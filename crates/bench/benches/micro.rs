//! Micro-benchmarks of the numerical kernels underpinning the pipeline:
//! the three predictors on one task, dataset generation, Spearman,
//! k-medoids, QR least squares, MLP training, the GA-kNN fitness loop,
//! top-k neighbour selection vs a full sort, the blocked GEMV kernel vs
//! the scalar loop it replaced, the unrolled lane-tree kernels vs their
//! scalar references (`gemv_unrolled`), the cache-tiled sq-diff builder vs
//! the naive double loop (`sqdiff_tiled`), the fused scale+clamp pass vs
//! two passes (`scale_fused`), MLPᵀ batch prediction sequential vs
//! pooled, the persistent pool vs per-call scoped spawning at
//! GA-generation granularity, the parallel executor's thread scaling, and
//! the database layer at scale: point queries/gathers (`db_query`) and
//! row/shard scans (`db_shard_scan`) on a 1k-machine catalog, dense vs
//! sharded, plus the serving layer: pool-fanned sharded gathers
//! (`db_gather_par`), the batched ranking-query front end
//! (`query_batch`), dense vs sharded-with-pruning, the versioned result
//! cache cold vs warm (`serve_cache`), streaming machine ingest with
//! tail-shard splitting (`db_ingest`), bootstrap rank-confidence
//! intervals sequential vs pooled (`rank_ci`), the serving path with
//! the confidence annex enabled vs plain (`serve_noisy`), the TCP
//! front end's warm loopback round trip vs warm in-process serving
//! (`net_serve`) — the gap prices the wire protocol, batching window,
//! and socket hop — the PCA-bucketed approximate fast path vs exact
//! serving on the 1k-machine catalog (`serve_approx`), and the PCA
//! fit/projection kernels behind the bucket index (`pca_project`).

use datatrans_bench::harness::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datatrans_bench::{bench_database, bench_scaled_database, bench_sharded_database, bench_task};
use datatrans_core::cache::ResultCache;
use datatrans_core::model::{GaKnn, GaKnnConfig, MlpT, NnT, Predictor};
use datatrans_core::serve::{
    serve_batch, serve_batch_cached, AppOfInterest, ApproxConfig, ConfidenceConfig, ModelKind,
    RankRequest, ServeConfig,
};
use datatrans_dataset::generator::{
    generate, generate_scaled, synthesize_ingest, DatasetConfig, NoiseConfig, ScaleConfig,
};
use datatrans_dataset::machine::ProcessorFamily;
use datatrans_dataset::query::MachineFilter;
use datatrans_dataset::sharded::ShardedPerfDatabase;
use datatrans_dataset::view::DatabaseView;
use datatrans_experiments::serve::synth_requests;
use datatrans_linalg::{solve::lstsq, Matrix};
use datatrans_ml::cluster::{k_medoids, KMedoidsConfig};
use datatrans_ml::ga::{GaConfig, GeneticAlgorithm};
use datatrans_ml::knn::{select_k_nearest, KnnIndex, Neighbor};
use datatrans_ml::mlp::{MlpConfig, MlpRegressor};
use datatrans_ml::pca::Pca;
use datatrans_parallel::Parallelism;
use datatrans_serve_net::protocol::{render_result, write_request};
use datatrans_serve_net::server::{NetServer, NetServerConfig};
use datatrans_stats::correlation::spearman;
use datatrans_stats::rank::bootstrap_rank_confidence;

fn bench_predictors(c: &mut Criterion) {
    let db = bench_database();
    let task = bench_task(&db);

    let mut group = c.benchmark_group("predictors");
    group.sample_size(10);
    group.bench_function("nnt_predict", |b| {
        let nnt = NnT::default();
        b.iter(|| std::hint::black_box(nnt.predict(&task).expect("nnt")))
    });
    group.bench_function("mlpt_predict_500_epochs", |b| {
        let mlpt = MlpT::default();
        b.iter(|| std::hint::black_box(mlpt.predict(&task).expect("mlpt")))
    });
    group.bench_function("gaknn_predict_32x40", |b| {
        let gaknn = GaKnn {
            config: GaKnnConfig {
                ga: GaConfig {
                    population: 32,
                    generations: 40,
                    // Single-thread kernel measurement; threading is
                    // covered by the parallel_scaling group.
                    parallelism: Parallelism::Sequential,
                    ..GaConfig::default_seeded(0)
                },
                ..GaKnnConfig::default()
            },
        };
        b.iter(|| std::hint::black_box(gaknn.predict(&task).expect("gaknn")))
    });
    group.finish();
}

fn bench_substrates(c: &mut Criterion) {
    let db = bench_database();

    let mut group = c.benchmark_group("substrates");
    group.bench_function("dataset_generate_29x117", |b| {
        b.iter(|| {
            let db = generate(&DatasetConfig::default()).expect("generates");
            std::hint::black_box(db.n_machines())
        })
    });
    group.bench_function("spearman_117", |b| {
        let xs: Vec<f64> = (0..117)
            .map(|i| (i as f64 * 0.7).sin() * 50.0 + 60.0)
            .collect();
        let ys: Vec<f64> = (0..117)
            .map(|i| (i as f64 * 0.7 + 0.3).sin() * 45.0 + 55.0)
            .collect();
        b.iter(|| std::hint::black_box(spearman(&xs, &ys).expect("spearman")))
    });
    group.bench_function("kmedoids_117_k5", |b| {
        let points = Matrix::from_fn(db.n_machines(), db.n_benchmarks(), |m, bench| {
            db.score(bench, m).ln()
        });
        b.iter(|| {
            std::hint::black_box(k_medoids(&points, &KMedoidsConfig::new(5, 7)).expect("kmedoids"))
        })
    });
    group.bench_function("qr_lstsq_100x10", |b| {
        let a = Matrix::from_fn(100, 10, |i, j| ((i * 13 + j * 7) % 23) as f64 - 11.0);
        let rhs: Vec<f64> = (0..100).map(|i| (i as f64 * 0.37).cos() * 10.0).collect();
        b.iter(|| std::hint::black_box(lstsq(&a, &rhs).expect("lstsq")))
    });
    group.bench_function("mlp_fit_100x28", |b| {
        let x = Matrix::from_fn(100, 28, |i, j| ((i + j) % 17) as f64 / 17.0);
        let y: Vec<f64> = (0..100).map(|i| (i % 13) as f64 / 13.0).collect();
        let config = MlpConfig {
            epochs: 100,
            ..MlpConfig::weka_default(3)
        };
        b.iter(|| std::hint::black_box(MlpRegressor::fit(&x, &y, &config).expect("fit")))
    });
    group.finish();
}

/// The GA-kNN fitness loop in isolation: a GA over a synthetic
/// leave-one-out-style objective whose cost per genome matches the real
/// `loo_error` shape (b benchmarks × d characteristic dims).
fn bench_ga_fitness(c: &mut Criterion) {
    let b = 28;
    let d = 24;
    // Synthetic standardized pairwise squared differences, row i*b+j.
    let sq_diffs = Matrix::from_fn(b * b, d, |r, dim| {
        (((r * 31 + dim * 7) % 17) as f64) * 0.125
    });
    let loo_like = move |weights: &[f64]| -> f64 {
        let mut total = 0.0;
        for held in 0..b {
            let mut best = f64::INFINITY;
            for other in 0..b {
                if other == held {
                    continue;
                }
                let dist: f64 = (0..d)
                    .map(|dim| weights[dim] * sq_diffs[(held * b + other, dim)])
                    .sum();
                best = best.min(dist);
            }
            total += best.sqrt();
        }
        -total
    };

    let mut group = c.benchmark_group("ga_fitness");
    group.sample_size(10);
    group.bench_function("loo_like_32x20_seq", |bch| {
        let config = GaConfig {
            population: 32,
            generations: 20,
            parallelism: Parallelism::Sequential,
            ..GaConfig::default_seeded(5)
        };
        let ga = GeneticAlgorithm::new(d, (0.0, 1.0), config).expect("ga");
        bch.iter(|| std::hint::black_box(ga.run(&loo_like).best_fitness))
    });
    group.bench_function("gaknn_predict_16x10", |bch| {
        let db = bench_database();
        let task = bench_task(&db);
        let gaknn = GaKnn {
            config: GaKnnConfig {
                ga: GaConfig {
                    population: 16,
                    generations: 10,
                    parallelism: Parallelism::Sequential,
                    ..GaConfig::default_seeded(0)
                },
                ..GaKnnConfig::default()
            },
        };
        bch.iter(|| std::hint::black_box(gaknn.predict(&task).expect("gaknn")))
    });
    group.finish();
}

/// Top-k selection (`select_nth_unstable_by` + sort of the k survivors)
/// against the full `sort_by` it replaced, at the b values the GA-kNN
/// leave-one-out loop sees and above.
fn bench_knn_topk(c: &mut Criterion) {
    let k = 10;
    let mut group = c.benchmark_group("knn_topk");
    group.sample_size(30);
    for b in [64usize, 256, 1024] {
        let make = || -> Vec<Neighbor> {
            (0..b)
                .map(|i| Neighbor {
                    index: i,
                    distance: (((i * 2654435761) % 1_000_003) as f64) * 1e-6,
                })
                .collect()
        };
        group.bench_with_input(BenchmarkId::new("topk", b), &b, |bch, _| {
            bch.iter(|| {
                let mut n = make();
                select_k_nearest(&mut n, k);
                std::hint::black_box(n.len())
            })
        });
        group.bench_with_input(BenchmarkId::new("fullsort", b), &b, |bch, _| {
            bch.iter(|| {
                let mut n = make();
                n.sort_by(|a, b| {
                    a.distance
                        .total_cmp(&b.distance)
                        .then(a.index.cmp(&b.index))
                });
                n.truncate(k);
                std::hint::black_box(n.len())
            })
        });
    }
    // The same comparison on the real query path.
    let points = Matrix::from_fn(256, 16, |i, j| (((i * 29 + j * 13) % 101) as f64) * 0.07);
    let index = KnnIndex::fit(points).expect("index");
    let query: Vec<f64> = (0..16).map(|j| (j as f64 * 0.41).cos() * 3.0).collect();
    group.bench_function("knn_index_nearest_b256_k10", |bch| {
        bch.iter(|| std::hint::black_box(index.nearest(&query, k).expect("nearest")))
    });
    group.finish();
}

/// The blocked GEMV kernel (`Matrix::mul_vec_into`) against the scalar
/// per-row loop it replaced on the GA-kNN fitness path, at the row counts
/// the leave-one-out loop sees and above.
fn bench_gemv(c: &mut Criterion) {
    let d = 32;
    let mut group = c.benchmark_group("gemv");
    group.sample_size(30);
    for b in [64usize, 256, 1024] {
        let m = Matrix::from_fn(b, d, |i, j| (((i * 31 + j * 7) % 23) as f64) * 0.125);
        let v: Vec<f64> = (0..d).map(|j| ((j * 13 % 11) as f64) * 0.09).collect();
        group.bench_with_input(BenchmarkId::new("mul_vec_into", b), &b, |bch, _| {
            let mut out = vec![0.0; b];
            bch.iter(|| {
                m.mul_vec_into(&v, &mut out).expect("shapes fixed");
                std::hint::black_box(out[b - 1])
            })
        });
        group.bench_with_input(BenchmarkId::new("scalar_rows", b), &b, |bch, _| {
            let mut out = vec![0.0; b];
            bch.iter(|| {
                for (i, slot) in out.iter_mut().enumerate() {
                    *slot = m.row(i).iter().zip(&v).map(|(a, x)| a * x).sum();
                }
                std::hint::black_box(out[b - 1])
            })
        });
    }
    group.finish();
}

/// The unrolled lane-tree GEMV against its scalar reference at the gated
/// row count (b = 1024, the largest fitness-path shape). Both sides reduce
/// over the same fixed 4-lane summation tree — `scalar_ref` is
/// `kernels::dot_ref` per row, the bitwise-equal specification the
/// unrolled path is tested against — so the comparison isolates the
/// unrolling itself, not a summation-order change. `scalar_seq` (the plain
/// sequential sum) rides along for context and is not gated.
fn bench_gemv_unrolled(c: &mut Criterion) {
    use datatrans_linalg::kernels;
    let (b, d) = (1024usize, 32usize);
    let m = Matrix::from_fn(b, d, |i, j| (((i * 31 + j * 7) % 23) as f64) * 0.125);
    let v: Vec<f64> = (0..d).map(|j| ((j * 13 % 11) as f64) * 0.09).collect();
    let mut group = c.benchmark_group("gemv_unrolled");
    group.sample_size(60);
    group.bench_function("unrolled_1024", |bch| {
        let mut out = vec![0.0; b];
        bch.iter(|| {
            m.mul_vec_into(&v, &mut out).expect("shapes fixed");
            std::hint::black_box(out[b - 1])
        })
    });
    group.bench_function("scalar_ref_1024", |bch| {
        let mut out = vec![0.0; b];
        bch.iter(|| {
            for (i, slot) in out.iter_mut().enumerate() {
                *slot = kernels::dot_ref(m.row(i), &v);
            }
            std::hint::black_box(out[b - 1])
        })
    });
    group.bench_function("scalar_seq_1024", |bch| {
        let mut out = vec![0.0; b];
        bch.iter(|| {
            for (i, slot) in out.iter_mut().enumerate() {
                *slot = m.row(i).iter().zip(&v).map(|(a, x)| a * x).sum();
            }
            std::hint::black_box(out[b - 1])
        })
    });
    group.finish();
}

/// The cache-tiled pairwise squared-difference builder against the naive
/// mirror-writing double loop it replaced, at a row count above the
/// 32-row tile edge (GA-kNN's real b is 28; 64 exercises full tiles).
fn bench_sqdiff_tiled(c: &mut Criterion) {
    use datatrans_linalg::kernels;
    let (b, d) = (64usize, 24usize);
    let chars = Matrix::from_fn(b, d, |i, j| (((i * 29 + j * 13) % 19) as f64) * 0.21);
    let mut group = c.benchmark_group("sqdiff_tiled");
    group.sample_size(30);
    group.bench_function("tiled_64x24", |bch| {
        bch.iter(|| std::hint::black_box(kernels::pairwise_sq_diffs(&chars).as_slice()[d]))
    });
    group.bench_function("naive_64x24", |bch| {
        bch.iter(|| std::hint::black_box(kernels::pairwise_sq_diffs_ref(&chars).as_slice()[d]))
    });
    group.finish();
}

/// The fused in-place scale+clamp kernel against the two separate passes
/// it replaces on the MLPᵀ prediction clamp stage.
fn bench_scale_fused(c: &mut Criterion) {
    use datatrans_linalg::kernels;
    let n = 4096usize;
    let base: Vec<f64> = (0..n).map(|i| ((i % 97) as f64) * 0.11 - 4.0).collect();
    let mut group = c.benchmark_group("scale_fused");
    group.sample_size(60);
    group.bench_function("fused_4096", |bch| {
        let mut buf = base.clone();
        bch.iter(|| {
            buf.copy_from_slice(&base);
            kernels::scale_clamp_in_place(&mut buf, 1.7, -3.0, 3.0);
            std::hint::black_box(buf[n - 1])
        })
    });
    group.bench_function("two_pass_4096", |bch| {
        let mut buf = base.clone();
        bch.iter(|| {
            buf.copy_from_slice(&base);
            for x in buf.iter_mut() {
                *x *= 1.7;
            }
            for x in buf.iter_mut() {
                *x = x.clamp(-3.0, 3.0);
            }
            std::hint::black_box(buf[n - 1])
        })
    });
    group.finish();
}

/// MLPᵀ batch prediction with the per-target loop sequential vs fanned out
/// over the persistent pool. The fit cost is shared (reduced epochs keep
/// it from drowning the predict loop); only the per-target forward passes
/// differ. Like `parallel_scaling`, the pooled numbers only beat
/// sequential on multi-core hardware — on a single-core container the
/// dispatch overhead shows up as a small slowdown.
fn bench_mlpt_predict(c: &mut Criterion) {
    println!(
        "(note: the pooled/threaded groups below measure dispatch overhead honestly \
         but only show speedups on multi-core hardware; a single-core container shows none)"
    );
    let db = bench_database();
    let task = bench_task(&db);
    let mut group = c.benchmark_group("mlpt_predict");
    group.sample_size(10);
    let variants: [(&str, Parallelism); 2] = [
        ("sequential", Parallelism::Sequential),
        ("pool_4", Parallelism::Threads(4)),
    ];
    for (name, parallelism) in variants {
        group.bench_function(name, |bch| {
            let mlpt = MlpT {
                config: MlpConfig {
                    epochs: 50,
                    ..MlpConfig::weka_default(0)
                },
                parallelism,
                ..MlpT::default()
            };
            bch.iter(|| std::hint::black_box(mlpt.predict(&task).expect("mlpt")))
        });
    }
    group.finish();
}

/// Per-call scoped spawning, as `par_map` worked before the persistent
/// pool: the baseline for `bench_executor`.
fn scoped_par_map<U: Send>(threads: usize, n: usize, f: impl Fn(usize) -> U + Sync) -> Vec<U> {
    let cursor = std::sync::atomic::AtomicUsize::new(0);
    let mut indexed: Vec<(usize, U)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        local.push((i, f(i)));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("bench worker"))
            .collect()
    });
    indexed.sort_unstable_by_key(|(i, _)| *i);
    indexed.into_iter().map(|(_, u)| u).collect()
}

/// Dispatch overhead at GA-generation granularity: one call maps a
/// 32-genome population's worth of fitness-sized work items, comparing the
/// persistent pool (two channel messages per worker per call) against
/// fresh scoped threads per call (spawn + join per worker per call). The
/// work per item is fixed, so the gap between the two IS the per-call
/// spawn cost a GA run pays once per generation. Thread-spawn latency
/// exists on any hardware, so the pool should win here even on a
/// single-core container.
fn bench_executor(c: &mut Criterion) {
    let population = 32;
    let threads = 2;
    // Roughly one cheap fitness evaluation's worth of arithmetic.
    let work = |i: usize| -> f64 {
        let mut acc = i as f64;
        for k in 0..2_000 {
            acc += ((k as f64) * 1e-3).sin();
        }
        acc
    };
    let mut group = c.benchmark_group("executor");
    group.sample_size(30);
    group.bench_function("pool_generation_2x32", |bch| {
        let p = Parallelism::Threads(threads);
        bch.iter(|| std::hint::black_box(p.par_map_indexed(1, population, work)))
    });
    group.bench_function("scoped_generation_2x32", |bch| {
        bch.iter(|| std::hint::black_box(scoped_par_map(threads, population, work)))
    });
    group.finish();
}

/// GA-kNN fitness evaluation at 1/2/4 worker threads. On multi-core
/// hardware the 4-thread run should be at least ~2× the 1-thread run;
/// `Threads(1)` resolves to the inline sequential path, so the comparison
/// includes zero spawn overhead on the baseline.
fn bench_parallel_scaling(c: &mut Criterion) {
    let db = bench_database();
    let task = bench_task(&db);
    let mut group = c.benchmark_group("parallel_scaling");
    group.sample_size(10);
    for threads in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new("gaknn_fitness_threads", threads),
            &threads,
            |bch, &threads| {
                let gaknn = GaKnn {
                    config: GaKnnConfig {
                        ga: GaConfig {
                            population: 32,
                            generations: 10,
                            parallelism: Parallelism::Threads(threads),
                            ..GaConfig::default_seeded(0)
                        },
                        ..GaKnnConfig::default()
                    },
                };
                bch.iter(|| std::hint::black_box(gaknn.predict(&task).expect("gaknn")))
            },
        );
    }
    group.finish();
}

/// Point queries and gathers against the 1k-machine scale catalog, dense
/// vs sharded (8 shards) vs the per-worker shard-cursor handle. Lookups
/// return the same stored `f64` on every backing; the groups measure the
/// cost of the shard indirection and what the cursor buys back on the
/// range-local access patterns the harnesses actually have.
fn bench_db_query(c: &mut Criterion) {
    let dense = bench_scaled_database();
    let sharded = bench_sharded_database(&dense);
    let n_machines = dense.n_machines();
    let n_benchmarks = dense.n_benchmarks();

    // Pseudorandom (benchmark, machine) probe sequence, fixed across
    // variants; LCG strides keep it deterministic with no RNG in the loop.
    let probes: Vec<(usize, usize)> = (0..4096)
        .map(|i| {
            (
                (i * 2654435761) % n_benchmarks,
                (i * 40503 + 13) % n_machines,
            )
        })
        .collect();
    // Range-local probe sequence: sweep one family's contiguous columns —
    // the access shape of a family-fold worker.
    let xeon = DatabaseView::machines_in_family(&dense, ProcessorFamily::Xeon);
    let local_probes: Vec<(usize, usize)> = (0..4096)
        .map(|i| ((i * 7) % n_benchmarks, xeon[i % xeon.len()]))
        .collect();

    let mut group = c.benchmark_group("db_query");
    group.sample_size(30);
    group.bench_function("score_dense_1k", |bch| {
        bch.iter(|| {
            let sum: f64 = probes.iter().map(|&(b, m)| dense.score(b, m)).sum();
            std::hint::black_box(sum)
        })
    });
    group.bench_function("score_sharded8_1k", |bch| {
        bch.iter(|| {
            let sum: f64 = probes
                .iter()
                .map(|&(b, m)| DatabaseView::score(&sharded, b, m))
                .sum();
            std::hint::black_box(sum)
        })
    });
    group.bench_function("score_reader_local_1k", |bch| {
        bch.iter(|| {
            let reader = sharded.reader();
            let sum: f64 = local_probes.iter().map(|&(b, m)| reader.score(b, m)).sum();
            std::hint::black_box(sum)
        })
    });
    // The task-construction gather: every benchmark × one family's
    // machines, plus a scattered every-29th-machine predictive set.
    let rows: Vec<usize> = (0..n_benchmarks).collect();
    let scattered: Vec<usize> = (0..n_machines).step_by(29).collect();
    group.bench_function("gather_family_dense_1k", |bch| {
        bch.iter(|| std::hint::black_box(DatabaseView::gather(&dense, &rows, &xeon).rows()))
    });
    group.bench_function("gather_family_sharded8_1k", |bch| {
        bch.iter(|| std::hint::black_box(DatabaseView::gather(&sharded, &rows, &xeon).rows()))
    });
    group.bench_function("gather_scattered_dense_1k", |bch| {
        bch.iter(|| std::hint::black_box(DatabaseView::gather(&dense, &rows, &scattered).rows()))
    });
    group.bench_function("gather_scattered_sharded8_1k", |bch| {
        bch.iter(|| std::hint::black_box(DatabaseView::gather(&sharded, &rows, &scattered).rows()))
    });
    group.finish();
}

/// Full-row and full-shard scans over the 1k-machine catalog: the
/// aggregate read patterns (checksums, exports, per-shard statistics) that
/// sweep whole storage blocks rather than gathering subsets.
fn bench_db_shard_scan(c: &mut Criterion) {
    let dense = bench_scaled_database();
    let sharded = bench_sharded_database(&dense);
    let n_benchmarks = dense.n_benchmarks();

    let mut group = c.benchmark_group("db_shard_scan");
    group.sample_size(30);
    group.bench_function("row_scan_dense_1k", |bch| {
        bch.iter(|| {
            let mut sum = 0.0;
            for b in 0..n_benchmarks {
                for segment in DatabaseView::benchmark_row_segments(&dense, b) {
                    sum += segment.scores.iter().sum::<f64>();
                }
            }
            std::hint::black_box(sum)
        })
    });
    group.bench_function("row_scan_sharded8_1k", |bch| {
        bch.iter(|| {
            let mut sum = 0.0;
            for b in 0..n_benchmarks {
                for segment in DatabaseView::benchmark_row_segments(&sharded, b) {
                    sum += segment.scores.iter().sum::<f64>();
                }
            }
            std::hint::black_box(sum)
        })
    });
    group.bench_function("shard_block_scan_1k", |bch| {
        bch.iter(|| {
            // Shard-major order: each shard's block is one contiguous
            // sweep — the layout the per-shard workers exploit.
            let mut sum = 0.0;
            for shard in sharded.shards() {
                sum += shard.scores().as_slice().iter().sum::<f64>();
            }
            std::hint::black_box(sum)
        })
    });
    group.bench_function("column_scan_sharded8_1k", |bch| {
        let n_machines = dense.n_machines();
        bch.iter(|| {
            let mut sum = 0.0;
            for m in (0..n_machines).step_by(97) {
                sum += DatabaseView::machine_column(&sharded, m)
                    .iter()
                    .sum::<f64>();
            }
            std::hint::black_box(sum)
        })
    });
    group.finish();
}

/// The sharded gather's pool-fanned row-chunk copies against the inline
/// loop, on a tall (128-benchmark × 1k-machine) catalog where a gather
/// has enough rows to distribute. Each sample times a 16-gather burst so
/// per-dispatch scheduler jitter amortizes (the single-gather numbers are
/// too bimodal to gate on a busy single-core box). Like the other pooled
/// groups, the parallel variants only win on multi-core hardware.
fn bench_db_gather_par(c: &mut Criterion) {
    const BURST: usize = 16;
    let dense = generate_scaled(&ScaleConfig {
        n_benchmarks: 128,
        ..ScaleConfig::default()
    })
    .expect("tall scale dataset generates");
    let sequential = bench_sharded_database(&dense);
    let pooled = ShardedPerfDatabase::from_dense(&dense, 8)
        .expect("8 shards")
        .with_parallelism(Parallelism::Threads(4));
    let rows: Vec<usize> = (0..dense.n_benchmarks()).collect();
    let family = DatabaseView::machines_in_family(&dense, ProcessorFamily::Xeon);
    let scattered: Vec<usize> = (0..dense.n_machines()).step_by(7).collect();

    let mut group = c.benchmark_group("db_gather_par");
    group.sample_size(30);
    let variants: [(&str, &ShardedPerfDatabase, &[usize]); 4] = [
        ("family_seq8_128x1k_x16", &sequential, &family),
        ("family_pool4_128x1k_x16", &pooled, &family),
        ("scattered_seq8_128x1k_x16", &sequential, &scattered),
        ("scattered_pool4_128x1k_x16", &pooled, &scattered),
    ];
    for (name, db, cols) in variants {
        group.bench_function(name, |bch| {
            bch.iter(|| {
                let mut total = 0usize;
                for _ in 0..BURST {
                    total += DatabaseView::gather(db, &rows, cols).rows();
                }
                std::hint::black_box(total)
            })
        });
    }
    group.finish();
}

/// The batched ranking-query front end: the serve driver's synthetic mix
/// (all three models, family/year/score restrictions) served in one pool
/// pass — dense vs sharded-with-pruning, sequential vs pooled fan-out.
fn bench_query_batch(c: &mut Criterion) {
    let dense = bench_database();
    let sharded = bench_sharded_database_117(&dense);
    let (requests, _labels) = synth_requests(&dense, 16, 5, 42);
    let config = |parallelism| ServeConfig {
        parallelism,
        ..ServeConfig::quick()
    };

    let mut group = c.benchmark_group("query_batch");
    group.sample_size(10);
    group.bench_function("mixed16_dense_seq", |bch| {
        let cfg = config(Parallelism::Sequential);
        bch.iter(|| std::hint::black_box(serve_batch(&dense, &requests, &cfg)))
    });
    group.bench_function("mixed16_sharded8_seq", |bch| {
        let cfg = config(Parallelism::Sequential);
        bch.iter(|| std::hint::black_box(serve_batch(&sharded, &requests, &cfg)))
    });
    group.bench_function("mixed16_sharded8_pool4", |bch| {
        let cfg = config(Parallelism::Threads(4));
        bch.iter(|| std::hint::black_box(serve_batch(&sharded, &requests, &cfg)))
    });
    group.finish();
}

/// The serving-path result cache on the same synthetic mix as
/// `query_batch`: a cold batch (fresh cache, every request evaluated,
/// every response inserted) against a warm batch (pre-warmed cache, every
/// request answered from storage). The warm/cold gap is the evaluation
/// work the cache elides; CI's trajectory gate asserts warm < cold in the
/// same run (`bench_diff --require-faster`).
fn bench_serve_cache(c: &mut Criterion) {
    let dense = bench_database();
    let sharded = bench_sharded_database_117(&dense);
    let (requests, _labels) = synth_requests(&dense, 16, 5, 42);
    let cfg = ServeConfig {
        parallelism: Parallelism::Sequential,
        ..ServeConfig::quick()
    };

    let mut group = c.benchmark_group("serve_cache");
    group.sample_size(10);
    group.bench_function("cold_mixed16_sharded8", |bch| {
        bch.iter(|| {
            let mut cache = ResultCache::new(64);
            let batch = serve_batch_cached(&sharded, &requests, &cfg, &mut cache);
            std::hint::black_box(batch.misses)
        })
    });
    group.bench_function("warm_mixed16_sharded8", |bch| {
        let mut cache = ResultCache::new(64);
        serve_batch_cached(&sharded, &requests, &cfg, &mut cache);
        bch.iter(|| {
            let batch = serve_batch_cached(&sharded, &requests, &cfg, &mut cache);
            std::hint::black_box(batch.hits)
        })
    });
    group.finish();
}

/// Streaming ingest on the 1k-machine catalog: appending a 64-machine
/// batch to the dense matrix and to the 8-shard backing (tail-shard
/// rebuild + in-place stats), plus the variant whose tail crosses the
/// split threshold and rebalances into new shards. Each iteration clones
/// the catalog first (ingest mutates); `clone_baseline` prices that clone
/// so the push cost can be read as the difference.
fn bench_db_ingest(c: &mut Criterion) {
    let dense = bench_scaled_database();
    let sharded = bench_sharded_database(&dense);
    // 8 shards over 1k machines: tail width 125. The split variant's
    // threshold of 150 makes the 64-machine push (125 + 64 = 189) split.
    let splitting = ShardedPerfDatabase::from_dense(&dense, 8)
        .expect("8 shards")
        .with_split_width(150)
        .expect("valid threshold");
    let batch = synthesize_ingest(0xD1CE, dense.benchmarks(), 64, 0.015).expect("ingest batch");

    let mut group = c.benchmark_group("db_ingest");
    group.sample_size(30);
    group.bench_function("clone_baseline_sharded8_1k", |bch| {
        bch.iter(|| std::hint::black_box(sharded.clone().n_machines()))
    });
    group.bench_function("push64_sharded8_1k", |bch| {
        bch.iter(|| {
            let mut db = sharded.clone();
            db.push_machines(&batch).expect("pushes");
            std::hint::black_box(db.n_machines())
        })
    });
    group.bench_function("push64_split_sharded8_1k", |bch| {
        bch.iter(|| {
            let mut db = splitting.clone();
            db.push_machines(&batch).expect("pushes");
            std::hint::black_box(db.n_shards())
        })
    });
    group.bench_function("push64_dense_1k", |bch| {
        bch.iter(|| {
            let mut db = dense.clone();
            db.push_machines(&batch).expect("pushes");
            std::hint::black_box(db.n_machines())
        })
    });
    group.finish();
}

/// Tie-aware bootstrap rank-confidence intervals: a catalog-sized panel
/// (117 items × 8 repeated measurements synthesized through the noise
/// model) at 200 resamples, sequential vs pool-fanned replicate loop.
/// Both variants are bitwise-identical by the per-replicate derived-stream
/// contract; the bench prices the fan-out.
fn bench_rank_ci(c: &mut Criterion) {
    let noise = NoiseConfig {
        seed: 7,
        sigma: 0.05,
        repeats: 8,
    };
    let samples: Vec<Vec<f64>> = (0..117)
        .map(|m| noise.measure(100.0 + m as f64, 0, m))
        .collect();

    let mut group = c.benchmark_group("rank_ci");
    group.sample_size(30);
    group.bench_function("bootstrap200_117x8_seq", |bch| {
        bch.iter(|| {
            std::hint::black_box(
                bootstrap_rank_confidence(&samples, 200, 0.95, 42, Parallelism::Sequential)
                    .expect("rank ci"),
            )
        })
    });
    group.bench_function("bootstrap200_117x8_pool4", |bch| {
        bch.iter(|| {
            std::hint::black_box(
                bootstrap_rank_confidence(&samples, 200, 0.95, 42, Parallelism::Threads(4))
                    .expect("rank ci"),
            )
        })
    });
    group.finish();
}

/// The serving path with the confidence annex: the same 8-request batch
/// served plain vs with bootstrap rank CIs and tie groups, on the
/// 8-shard backing. The gap is the per-request measurement synthesis +
/// bootstrap cost riding on top of model time.
fn bench_serve_noisy(c: &mut Criterion) {
    let dense = bench_database();
    let sharded = bench_sharded_database_117(&dense);
    let (requests, _labels) = synth_requests(&dense, 8, 5, 42);
    let cfg = ServeConfig {
        parallelism: Parallelism::Sequential,
        ..ServeConfig::quick()
    };
    let mut with_confidence = requests.clone();
    for request in &mut with_confidence {
        request.confidence = Some(ConfidenceConfig {
            repeats: 4,
            resamples: 100,
            ..ConfidenceConfig::default()
        });
    }

    let mut group = c.benchmark_group("serve_noisy");
    group.sample_size(10);
    group.bench_function("mixed8_plain_sharded8", |bch| {
        bch.iter(|| std::hint::black_box(serve_batch(&sharded, &requests, &cfg)))
    });
    group.bench_function("mixed8_confidence_sharded8", |bch| {
        bch.iter(|| std::hint::black_box(serve_batch(&sharded, &with_confidence, &cfg)))
    });
    group.finish();
}

/// The TCP front end against in-process serving on the same warm 16-mix:
/// `inproc` runs `serve_batch_cached` (all hits) and renders the wire
/// lines; `tcp` pipelines the same 16 request lines over a persistent
/// loopback connection to a warm server. The gap is pure front-end
/// overhead — parse, batching window, socket round trip — with model
/// time cached out of both sides. CI's trajectory gate asserts
/// inproc < tcp in the same run (`bench_diff --require-faster`).
fn bench_net_serve(c: &mut Criterion) {
    use std::io::{BufRead, Write};

    let dense = bench_database();
    let (requests, _labels) = synth_requests(&dense, 16, 5, 42);
    let cfg = ServeConfig {
        parallelism: Parallelism::Sequential,
        ..ServeConfig::quick()
    };
    let lines: Vec<String> = requests.iter().map(write_request).collect();

    let mut group = c.benchmark_group("net_serve");
    group.sample_size(10);
    group.bench_function("inproc_mixed16_warm", |bch| {
        let mut cache = ResultCache::new(64);
        serve_batch_cached(&dense, &requests, &cfg, &mut cache);
        bch.iter(|| {
            let batch = serve_batch_cached(&dense, &requests, &cfg, &mut cache);
            let rendered: Vec<String> = batch.responses.iter().map(render_result).collect();
            std::hint::black_box(rendered)
        })
    });
    group.bench_function("tcp_mixed16_warm", |bch| {
        let net_config = NetServerConfig {
            serve: cfg.clone(),
            cache_capacity: 64,
            ..NetServerConfig::default()
        };
        let server = NetServer::spawn(
            std::sync::Arc::new(dense.clone()),
            "127.0.0.1:0",
            net_config,
        )
        .expect("bind loopback");
        let mut stream = std::net::TcpStream::connect(server.local_addr()).expect("connect");
        stream.set_nodelay(true).expect("nodelay");
        let mut reader = std::io::BufReader::new(stream.try_clone().expect("clone stream"));
        let round_trip = |stream: &mut std::net::TcpStream,
                          reader: &mut std::io::BufReader<std::net::TcpStream>|
         -> usize {
            let mut bytes = 0usize;
            for line in &lines {
                stream.write_all(line.as_bytes()).expect("send");
                stream.write_all(b"\n").expect("send");
            }
            let mut response = String::new();
            for _ in &lines {
                response.clear();
                assert!(reader.read_line(&mut response).expect("recv") > 0);
                bytes += response.len();
            }
            bytes
        };
        // Warm the server's cache so iterations price the wire, not the
        // models.
        round_trip(&mut stream, &mut reader);
        bch.iter(|| std::hint::black_box(round_trip(&mut stream, &mut reader)))
    });
    group.finish();
}

/// The PCA-bucketed approximate fast path against exact serving on the
/// 1k-machine catalog: the same four unrestricted top-10 NNᵀ requests
/// served with every candidate evaluated (`exact`) vs coarse-ranked over
/// 16 bucket centroids with only the best 2 buckets' members surviving to
/// the exact model (`approx`). Survivor scores are bitwise-equal between
/// the two sides, so the gap is pure candidate pruning. CI's trajectory
/// gate asserts approx < exact in the same run
/// (`bench_diff --require-faster`).
fn bench_serve_approx(c: &mut Criterion) {
    let dense = bench_scaled_database();
    let predictive: Vec<usize> = (0..5).map(|p| p * dense.n_machines() / 5).collect();
    let exact: Vec<RankRequest> = (0..4)
        .map(|i| RankRequest {
            app: AppOfInterest::Suite(i * 7),
            model: ModelKind::NnT,
            predictive: predictive.clone(),
            restrict: MachineFilter::all(),
            top_k: Some(10),
            seed: 42 + i as u64,
            confidence: None,
            approx: None,
        })
        .collect();
    let mut approx = exact.clone();
    for request in &mut approx {
        request.approx = Some(ApproxConfig {
            n_components: 2,
            n_buckets: 16,
            probe_buckets: 2,
        });
    }
    let cfg = ServeConfig {
        parallelism: Parallelism::Sequential,
        ..ServeConfig::quick()
    };

    let mut group = c.benchmark_group("serve_approx");
    group.sample_size(10);
    group.bench_function("exact", |bch| {
        bch.iter(|| std::hint::black_box(serve_batch(&dense, &exact, &cfg)))
    });
    group.bench_function("approx", |bch| {
        bch.iter(|| std::hint::black_box(serve_batch(&dense, &approx, &cfg)))
    });
    group.finish();
}

/// The PCA kernels behind the bucket index, on the catalog-shaped matrix
/// the index actually fits (1000 machines × 29 benchmarks, log-score
/// space): `fit` is the per-build eigendecomposition cost, `transform`
/// the kernel-routed projection of every machine into component space.
fn bench_pca_project(c: &mut Criterion) {
    let dense = bench_scaled_database();
    let data = Matrix::from_fn(dense.n_machines(), dense.n_benchmarks(), |m, b| {
        dense.score(b, m).ln()
    });
    let pca = Pca::fit(&data, 4).expect("pca fits");

    let mut group = c.benchmark_group("pca_project");
    group.sample_size(30);
    group.bench_function("fit_1000x29_c4", |bch| {
        bch.iter(|| std::hint::black_box(Pca::fit(&data, 4).expect("pca fits")))
    });
    group.bench_function("transform_1000x29_c4", |bch| {
        bch.iter(|| std::hint::black_box(pca.transform(&data).expect("projects")))
    });
    group.finish();
}

/// The paper-sized (29 × 117) database partitioned 8 ways, for the
/// serving benches (the 1k fixture would drown the planner in model
/// time).
fn bench_sharded_database_117(
    dense: &datatrans_dataset::database::PerfDatabase,
) -> ShardedPerfDatabase {
    ShardedPerfDatabase::from_dense(dense, 8).expect("8 shards over 117 machines")
}

criterion_group!(
    benches,
    bench_predictors,
    bench_substrates,
    bench_ga_fitness,
    bench_knn_topk,
    bench_gemv,
    bench_gemv_unrolled,
    bench_sqdiff_tiled,
    bench_scale_fused,
    bench_mlpt_predict,
    bench_executor,
    bench_parallel_scaling,
    bench_db_query,
    bench_db_shard_scan,
    bench_db_gather_par,
    bench_query_batch,
    bench_serve_cache,
    bench_db_ingest,
    bench_rank_ci,
    bench_serve_noisy,
    bench_net_serve,
    bench_serve_approx,
    bench_pca_project
);
criterion_main!(benches);

//! Micro-benchmarks of the numerical kernels underpinning the pipeline:
//! the three predictors on one task, dataset generation, Spearman,
//! k-medoids, QR least squares, and MLP training.

use datatrans_bench::harness::{criterion_group, criterion_main, Criterion};
use datatrans_bench::{bench_database, bench_task};
use datatrans_core::model::{GaKnn, GaKnnConfig, MlpT, NnT, Predictor};
use datatrans_dataset::generator::{generate, DatasetConfig};
use datatrans_linalg::{solve::lstsq, Matrix};
use datatrans_ml::cluster::{k_medoids, KMedoidsConfig};
use datatrans_ml::ga::GaConfig;
use datatrans_ml::mlp::{MlpConfig, MlpRegressor};
use datatrans_stats::correlation::spearman;

fn bench_predictors(c: &mut Criterion) {
    let db = bench_database();
    let task = bench_task(&db);

    let mut group = c.benchmark_group("predictors");
    group.sample_size(10);
    group.bench_function("nnt_predict", |b| {
        let nnt = NnT::default();
        b.iter(|| std::hint::black_box(nnt.predict(&task).expect("nnt")))
    });
    group.bench_function("mlpt_predict_500_epochs", |b| {
        let mlpt = MlpT::default();
        b.iter(|| std::hint::black_box(mlpt.predict(&task).expect("mlpt")))
    });
    group.bench_function("gaknn_predict_32x40", |b| {
        let gaknn = GaKnn {
            config: GaKnnConfig {
                ga: GaConfig {
                    population: 32,
                    generations: 40,
                    ..GaConfig::default_seeded(0)
                },
                ..GaKnnConfig::default()
            },
        };
        b.iter(|| std::hint::black_box(gaknn.predict(&task).expect("gaknn")))
    });
    group.finish();
}

fn bench_substrates(c: &mut Criterion) {
    let db = bench_database();

    let mut group = c.benchmark_group("substrates");
    group.bench_function("dataset_generate_29x117", |b| {
        b.iter(|| {
            let db = generate(&DatasetConfig::default()).expect("generates");
            std::hint::black_box(db.n_machines())
        })
    });
    group.bench_function("spearman_117", |b| {
        let xs: Vec<f64> = (0..117)
            .map(|i| (i as f64 * 0.7).sin() * 50.0 + 60.0)
            .collect();
        let ys: Vec<f64> = (0..117)
            .map(|i| (i as f64 * 0.7 + 0.3).sin() * 45.0 + 55.0)
            .collect();
        b.iter(|| std::hint::black_box(spearman(&xs, &ys).expect("spearman")))
    });
    group.bench_function("kmedoids_117_k5", |b| {
        let points = Matrix::from_fn(db.n_machines(), db.n_benchmarks(), |m, bench| {
            db.score(bench, m).ln()
        });
        b.iter(|| {
            std::hint::black_box(k_medoids(&points, &KMedoidsConfig::new(5, 7)).expect("kmedoids"))
        })
    });
    group.bench_function("qr_lstsq_100x10", |b| {
        let a = Matrix::from_fn(100, 10, |i, j| ((i * 13 + j * 7) % 23) as f64 - 11.0);
        let rhs: Vec<f64> = (0..100).map(|i| (i as f64 * 0.37).cos() * 10.0).collect();
        b.iter(|| std::hint::black_box(lstsq(&a, &rhs).expect("lstsq")))
    });
    group.bench_function("mlp_fit_100x28", |b| {
        let x = Matrix::from_fn(100, 28, |i, j| ((i + j) % 17) as f64 / 17.0);
        let y: Vec<f64> = (0..100).map(|i| (i % 13) as f64 / 13.0).collect();
        let config = MlpConfig {
            epochs: 100,
            ..MlpConfig::weka_default(3)
        };
        b.iter(|| std::hint::black_box(MlpRegressor::fit(&x, &y, &config).expect("fit")))
    });
    group.finish();
}

criterion_group!(benches, bench_predictors, bench_substrates);
criterion_main!(benches);

//! Microarchitecture-independent workload characteristics.
//!
//! These play the role of the MICA-style characteristics of Hoste et al.:
//! properties of a program that do not depend on the machine it runs on.
//! In this synthetic substrate the same vector *drives* the performance
//! model, so the causal link GA-kNN must learn (characteristics →
//! performance) is preserved by construction.

/// The latent demand vector of one workload.
///
/// All fractions are in `[0, 1]`; working sets are in MiB; the dynamic
/// instruction count is in units of 10⁹ instructions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadCharacteristics {
    /// Dynamic instruction count, ×10⁹.
    pub instr_e9: f64,
    /// Inherent instruction-level parallelism (attainable IPC ceiling).
    pub ilp: f64,
    /// Fraction of floating-point instructions.
    pub fp_fraction: f64,
    /// Fraction of memory (load/store) instructions.
    pub mem_fraction: f64,
    /// Fraction of branch instructions.
    pub branch_fraction: f64,
    /// Mispredictions per branch on a baseline predictor.
    pub mispredict_rate: f64,
    /// Data working-set size in MiB.
    pub working_set_mib: f64,
    /// Fraction of accesses that stream (never become cache-resident).
    pub stream_fraction: f64,
    /// Power-law locality exponent: higher = sharper cache cliff.
    pub locality_alpha: f64,
    /// Sustained memory-bandwidth demand at full speed, GB/s.
    pub bandwidth_demand: f64,
    /// Memory-level parallelism: overlapping outstanding misses (≥ 1).
    pub mlp: f64,
    /// Code regularity in `[0, 1]`: how well static/EPIC machines can
    /// schedule it (software pipelining, predication).
    pub regularity: f64,
}

impl WorkloadCharacteristics {
    /// Number of dimensions in the characteristic vector.
    pub const DIMS: usize = 12;

    /// Human-readable names of the vector dimensions (for reports).
    pub const DIM_NAMES: [&'static str; Self::DIMS] = [
        "log-instruction-count",
        "ilp",
        "fp-fraction",
        "mem-fraction",
        "branch-fraction",
        "mispredict-rate",
        "log-working-set",
        "stream-fraction",
        "locality-alpha",
        "bandwidth-demand",
        "mlp",
        "regularity",
    ];

    /// Number of dimensions in the *observable* (MICA-style) vector.
    pub const MICA_DIMS: usize = 8;

    /// Flattens into the full latent vector. Count-like dimensions are
    /// log-scaled.
    pub fn to_vector(&self) -> Vec<f64> {
        vec![
            self.instr_e9.max(1e-9).ln(),
            self.ilp,
            self.fp_fraction,
            self.mem_fraction,
            self.branch_fraction,
            self.mispredict_rate,
            self.working_set_mib.max(1e-9).ln(),
            self.stream_fraction,
            self.locality_alpha,
            self.bandwidth_demand,
            self.mlp,
            self.regularity,
        ]
    }

    /// The microarchitecture-independent characteristics an actual MICA
    /// profiling run can observe — what GA-kNN consumes.
    ///
    /// Instruction mix, ILP, branch predictability, working-set size and
    /// code regularity are all measurable from an instrumented run. The
    /// remaining latent dimensions are not:
    ///
    /// * **bandwidth demand** and **memory-level parallelism** are
    ///   machine-interaction quantities;
    /// * the **reuse-distance shape** (`stream_fraction`,
    ///   `locality_alpha`) is only weakly reflected in MICA's working-set
    ///   counts and local stride histograms.
    ///
    /// This observation gap is precisely why workload-similarity methods
    /// mispredict outlier workloads — the paper's motivation.
    pub fn to_mica_vector(&self) -> Vec<f64> {
        vec![
            self.instr_e9.max(1e-9).ln(),
            self.ilp,
            self.fp_fraction,
            self.mem_fraction,
            self.branch_fraction,
            self.mispredict_rate,
            self.working_set_mib.max(1e-9).ln(),
            self.regularity,
        ]
    }

    /// Validates ranges; used by the workload synthesizer and tests.
    pub fn is_plausible(&self) -> bool {
        let fractions_ok = [
            self.fp_fraction,
            self.mem_fraction,
            self.branch_fraction,
            self.stream_fraction,
            self.regularity,
        ]
        .iter()
        .all(|f| (0.0..=1.0).contains(f));
        fractions_ok
            && self.instr_e9 > 0.0
            && self.ilp >= 0.5
            && self.mispredict_rate >= 0.0
            && self.mispredict_rate <= 0.5
            && self.working_set_mib > 0.0
            && self.locality_alpha > 0.0
            && self.bandwidth_demand >= 0.0
            && self.mlp >= 1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> WorkloadCharacteristics {
        WorkloadCharacteristics {
            instr_e9: 2000.0,
            ilp: 2.5,
            fp_fraction: 0.1,
            mem_fraction: 0.3,
            branch_fraction: 0.15,
            mispredict_rate: 0.05,
            working_set_mib: 8.0,
            stream_fraction: 0.1,
            locality_alpha: 0.5,
            bandwidth_demand: 2.0,
            mlp: 1.5,
            regularity: 0.4,
        }
    }

    #[test]
    fn vector_has_declared_dims() {
        let v = sample().to_vector();
        assert_eq!(v.len(), WorkloadCharacteristics::DIMS);
        assert_eq!(
            WorkloadCharacteristics::DIM_NAMES.len(),
            WorkloadCharacteristics::DIMS
        );
    }

    #[test]
    fn vector_log_scales_counts() {
        let v = sample().to_vector();
        assert!((v[0] - 2000.0f64.ln()).abs() < 1e-12);
        assert!((v[6] - 8.0f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn plausibility_checks() {
        assert!(sample().is_plausible());
        let mut bad = sample();
        bad.fp_fraction = 1.5;
        assert!(!bad.is_plausible());
        let mut bad = sample();
        bad.mlp = 0.5;
        assert!(!bad.is_plausible());
        let mut bad = sample();
        bad.working_set_mib = 0.0;
        assert!(!bad.is_plausible());
    }
}

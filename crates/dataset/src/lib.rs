//! Synthetic SPEC CPU2006-like performance database.
//!
//! The paper evaluates data transposition on SPEC CPU2006 speed-base ratios
//! for 117 commercial machines (Table 1). Those published measurements are
//! not redistributable, so this crate builds the closest synthetic
//! equivalent:
//!
//! * [`catalog`] — the full Table 1 machine catalog: 17 processor families,
//!   39 CPU nicknames, 3 machines per nickname = 117 machines, each with
//!   latent microarchitecture parameters ([`microarch::MicroArch`]) and a
//!   release year.
//! * [`benchmark`] — the 29 SPEC CPU2006 benchmarks with latent workload
//!   demand vectors ([`characteristics::WorkloadCharacteristics`]),
//!   including the outlier profiles the paper discusses (`libquantum`,
//!   `cactusADM`, `leslie3d`, `lbm` as streaming outliers; `namd`, `hmmer`
//!   as regular compute outliers).
//! * [`perf_model`] — an analytical CPI-stack model turning (machine,
//!   workload) pairs into execution times, and SPEC-style speed ratios
//!   against a modeled SUN Ultra5 296 MHz reference.
//! * [`generator`] — deterministic, seeded assembly of the full
//!   [`database::PerfDatabase`], with measurement noise, plus synthesis of
//!   streaming-ingest batches ([`generator::synthesize_ingest`]) appended
//!   through [`database::PerfDatabase::push_machines`] /
//!   [`sharded::ShardedPerfDatabase::push_machines`] under a
//!   monotonically increasing catalog version.
//! * [`workload_synth`] — synthesis of *applications of interest* that are
//!   not part of the suite, for end-to-end examples.
//! * [`view`] — the backing-agnostic [`view::DatabaseView`] read surface
//!   every consumer goes through.
//! * [`sharded`] — the same table partitioned into machine-range shards
//!   ([`sharded::ShardedPerfDatabase`]) for serving-scale catalogs; bitwise
//!   interchangeable with the dense backing.
//! * [`query`] — machine-restriction filters ([`query::MachineFilter`])
//!   and the shard-pruning planner: per-shard statistics
//!   ([`query::ShardStats`]) let the sharded backing skip shards that
//!   provably cannot match, with plans identical to a full scan.
//! * [`bucket`] — the PCA bucket index ([`bucket::BucketIndex`]) behind
//!   approximate serving: machines projected into log-score component
//!   space and sliced into equal-width buckets along the leading
//!   component, with reconstructed centroid columns for coarse ranking.
//!
//! # Example
//!
//! ```
//! use datatrans_dataset::generator::{generate, DatasetConfig};
//!
//! # fn main() -> Result<(), datatrans_dataset::DatasetError> {
//! let db = generate(&DatasetConfig::default())?;
//! assert_eq!(db.n_benchmarks(), 29);
//! assert_eq!(db.n_machines(), 117);
//! let score = db.score(0, 0); // SPEC-style ratio, > 1 for modern machines
//! assert!(score > 1.0);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

mod error;

pub mod benchmark;
pub mod bucket;
pub mod catalog;
pub mod characteristics;
pub mod database;
pub mod generator;
pub mod machine;
pub mod microarch;
pub mod perf_model;
pub mod query;
pub mod sharded;
pub mod view;
pub mod workload_synth;

pub use bucket::BucketIndex;
pub use database::MachineIngest;
pub use error::DatasetError;
pub use query::{MachineFilter, QueryPlan, ShardStats};
pub use sharded::ShardedPerfDatabase;
pub use view::{DatabaseView, DbReader};

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, DatasetError>;

//! The backing-agnostic read surface of the performance database.
//!
//! The paper's database is a single dense 29 × 117 matrix; the serving-
//! scale system partitions the same `benchmarks × machines` table into
//! column-range shards ([`crate::sharded::ShardedPerfDatabase`]). Every
//! consumer in `core`/`experiments` — task gathers, the evaluation
//! harnesses, selection, analysis — reads the database exclusively through
//! the [`DatabaseView`] trait defined here, so the dense and sharded
//! backings are interchangeable and provably (bitwise) equivalent; the
//! cross-shard equivalence test suite pins that contract.
//!
//! # Contract
//!
//! All implementations view the *same logical table*: `score(b, m)` is the
//! SPEC-style ratio of benchmark `b` on machine `m`, machine metadata is
//! ordered identically, and [`DatabaseView::gather`] copies the requested
//! submatrix in request order. A sharded backing must return exactly the
//! same `f64` bits as the dense backing it was built from — values are
//! stored, never recomputed, so partitioning can never perturb a
//! prediction.

use datatrans_linalg::{Matrix, VecView};

use crate::benchmark::Benchmark;
use crate::database::PerfDatabase;
use crate::machine::{Machine, ProcessorFamily};
use crate::query::{scan_machines, MachineFilter, QueryPlan};
use crate::sharded::ShardReader;
use crate::{DatasetError, Result};

/// One contiguous run of a benchmark's row, as stored by one shard.
///
/// A dense backing yields a single segment covering every machine; a
/// sharded backing yields one segment per shard, in machine order. Segment
/// `scores[i]` is the score of machine `start + i`.
#[derive(Debug, Clone, Copy)]
pub struct RowSegment<'a> {
    /// Global index of the first machine covered by this segment.
    pub start: usize,
    /// Scores of machines `start .. start + scores.len()`, borrowed from
    /// the backing storage.
    pub scores: &'a [f64],
}

/// Read access to a `benchmarks × machines` performance database,
/// independent of the backing layout (dense or column-range sharded).
///
/// The trait is object-safe: harness internals hand `&dyn DatabaseView`
/// (usually a per-worker [`DbReader`]) down to task construction.
pub trait DatabaseView: Sync {
    /// Number of benchmarks (logical rows).
    fn n_benchmarks(&self) -> usize;

    /// Number of machines (logical columns).
    fn n_machines(&self) -> usize;

    /// Benchmark metadata, in row order.
    fn benchmarks(&self) -> &[Benchmark];

    /// Machine metadata, in column order.
    fn machines(&self) -> &[Machine];

    /// Score of benchmark `b` on machine `m`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of bounds.
    fn score(&self, b: usize, m: usize) -> f64;

    /// All scores of one machine across benchmarks, as a zero-copy strided
    /// view into the backing storage.
    ///
    /// # Panics
    ///
    /// Panics if `m` is out of bounds.
    fn machine_column(&self, m: usize) -> VecView<'_>;

    /// The contiguous storage segments of benchmark row `b`, in machine
    /// order (dense: one segment; sharded: one per shard).
    ///
    /// # Panics
    ///
    /// Panics if `b` is out of bounds.
    fn benchmark_row_segments(&self, b: usize) -> Vec<RowSegment<'_>>;

    /// Copies the `benchmarks × machines` submatrix selected by arbitrary
    /// index subsets, in request order — the gather behind
    /// task construction.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    fn gather(&self, benchmarks: &[usize], machines: &[usize]) -> Matrix;

    /// Number of storage shards backing this view (dense: 1).
    fn n_shards(&self) -> usize {
        1
    }

    /// The backing catalog's version counter: 0 for a freshly built
    /// catalog, incremented by every non-empty machine ingest. The serving
    /// layer keys its result cache on `(request fingerprint, version)`, so
    /// a moved version drops every stale entry. Default: 0 (an immutable
    /// view never changes).
    fn catalog_version(&self) -> u64 {
        0
    }

    /// Resolves a machine restriction to a [`QueryPlan`]: the matching
    /// machine indices in ascending catalog order, plus how many shards
    /// the planner scanned versus pruned.
    ///
    /// The default implementation scans every machine (one logical shard).
    /// The sharded backing overrides it with a statistics-pruned plan that
    /// skips shards which provably cannot match — the **machine list is
    /// identical either way**; only the amount of storage touched differs.
    ///
    /// # Panics
    ///
    /// Panics if the filter references an out-of-range benchmark or
    /// machine index (validate with [`MachineFilter::invalid_index`]
    /// first where the filter is untrusted input).
    fn plan_machines(&self, filter: &MachineFilter) -> QueryPlan {
        QueryPlan {
            machines: scan_machines(self, filter),
            shards_scanned: 1,
            shards_pruned: 0,
        }
    }

    /// A cheap per-worker read handle.
    ///
    /// Dense backings return a stateless pass-through; the sharded backing
    /// returns a handle that caches the shard serving the most recent
    /// lookup, so a worker sweeping one shard's machine range locates it
    /// once. The handle reads the same storage, so results are bitwise
    /// identical — it only changes *how fast* a lookup finds its shard,
    /// which is exactly the per-worker-scratch contract of
    /// `Parallelism::par_map_with`.
    fn reader(&self) -> DbReader<'_>;

    /// Benchmark row `b` as one owned contiguous vector (concatenated
    /// segments).
    ///
    /// # Panics
    ///
    /// Panics if `b` is out of bounds.
    fn benchmark_row_vec(&self, b: usize) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.n_machines());
        for segment in self.benchmark_row_segments(b) {
            out.extend_from_slice(segment.scores);
        }
        out
    }

    /// Looks up a benchmark index by name.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::NotFound`] if no benchmark has that name.
    fn benchmark_index(&self, name: &str) -> Result<usize> {
        self.benchmarks()
            .iter()
            .position(|b| b.name == name)
            .ok_or_else(|| DatasetError::NotFound {
                what: "benchmark",
                name: name.to_owned(),
            })
    }

    /// Indices of all machines belonging to `family`.
    fn machines_in_family(&self, family: ProcessorFamily) -> Vec<usize> {
        self.machines()
            .iter()
            .enumerate()
            .filter(|(_, m)| m.family == family)
            .map(|(i, _)| i)
            .collect()
    }

    /// Indices of all machines released in `year`.
    fn machines_in_year(&self, year: u16) -> Vec<usize> {
        self.machines()
            .iter()
            .enumerate()
            .filter(|(_, m)| m.year == year)
            .map(|(i, _)| i)
            .collect()
    }

    /// Indices of all machines released strictly before `year`.
    fn machines_before_year(&self, year: u16) -> Vec<usize> {
        self.machines()
            .iter()
            .enumerate()
            .filter(|(_, m)| m.year < year)
            .map(|(i, _)| i)
            .collect()
    }
}

/// A per-worker read handle over either backing.
///
/// Obtained from [`DatabaseView::reader`]; implements [`DatabaseView`]
/// itself, so harness workers can hand it to task construction unchanged.
/// The dense variant is a stateless pass-through; the sharded variant
/// caches the last shard touched (see
/// [`crate::sharded::ShardReader`]).
#[derive(Debug)]
pub enum DbReader<'a> {
    /// Pass-through over the dense backing.
    Dense(&'a PerfDatabase),
    /// Shard-cursor handle over the sharded backing.
    Sharded(ShardReader<'a>),
}

impl DatabaseView for DbReader<'_> {
    fn n_benchmarks(&self) -> usize {
        match self {
            DbReader::Dense(db) => DatabaseView::n_benchmarks(*db),
            DbReader::Sharded(r) => r.n_benchmarks(),
        }
    }

    fn n_machines(&self) -> usize {
        match self {
            DbReader::Dense(db) => DatabaseView::n_machines(*db),
            DbReader::Sharded(r) => r.n_machines(),
        }
    }

    fn benchmarks(&self) -> &[Benchmark] {
        match self {
            DbReader::Dense(db) => DatabaseView::benchmarks(*db),
            DbReader::Sharded(r) => r.benchmarks(),
        }
    }

    fn machines(&self) -> &[Machine] {
        match self {
            DbReader::Dense(db) => DatabaseView::machines(*db),
            DbReader::Sharded(r) => r.machines(),
        }
    }

    fn score(&self, b: usize, m: usize) -> f64 {
        match self {
            DbReader::Dense(db) => DatabaseView::score(*db, b, m),
            DbReader::Sharded(r) => r.score(b, m),
        }
    }

    fn machine_column(&self, m: usize) -> VecView<'_> {
        match self {
            DbReader::Dense(db) => DatabaseView::machine_column(*db, m),
            DbReader::Sharded(r) => r.machine_column(m),
        }
    }

    fn benchmark_row_segments(&self, b: usize) -> Vec<RowSegment<'_>> {
        match self {
            DbReader::Dense(db) => DatabaseView::benchmark_row_segments(*db, b),
            DbReader::Sharded(r) => r.benchmark_row_segments(b),
        }
    }

    fn gather(&self, benchmarks: &[usize], machines: &[usize]) -> Matrix {
        match self {
            DbReader::Dense(db) => DatabaseView::gather(*db, benchmarks, machines),
            DbReader::Sharded(r) => r.gather(benchmarks, machines),
        }
    }

    fn n_shards(&self) -> usize {
        match self {
            DbReader::Dense(_) => 1,
            DbReader::Sharded(r) => r.n_shards(),
        }
    }

    fn catalog_version(&self) -> u64 {
        match self {
            DbReader::Dense(db) => DatabaseView::catalog_version(*db),
            DbReader::Sharded(r) => r.catalog_version(),
        }
    }

    fn plan_machines(&self, filter: &MachineFilter) -> QueryPlan {
        match self {
            DbReader::Dense(db) => DatabaseView::plan_machines(*db, filter),
            DbReader::Sharded(r) => r.plan_machines(filter),
        }
    }

    fn reader(&self) -> DbReader<'_> {
        match self {
            DbReader::Dense(db) => DbReader::Dense(db),
            DbReader::Sharded(r) => r.reader(),
        }
    }
}

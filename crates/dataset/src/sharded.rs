//! Column-range sharding of the performance database.
//!
//! A [`ShardedPerfDatabase`] stores the same logical `benchmarks ×
//! machines` table as [`PerfDatabase`], partitioned by **machine range**:
//! shard `s` owns a contiguous block of machine columns as its own dense
//! [`Matrix`] plus the matching slice of machine metadata. Machine ranges
//! are balanced — when the shard count does not divide the machine count,
//! the first `n_machines % n_shards` shards are one column wider.
//!
//! Partitioning by machine range matches the read patterns of the
//! evaluation harnesses: a processor-family fold or a release-year era
//! selects machine index ranges that are contiguous in catalog order, so
//! those selections read from one shard (or a handful of neighbours) —
//! though a fold's complementary predictive gather still spans the
//! remaining shards. Scores are **copied, never recomputed** when
//! sharding, so every accessor is bitwise-identical to the dense backing
//! (`tests/shard_equivalence.rs` pins this).
//!
//! Beyond storage, each shard carries aggregate statistics
//! ([`crate::query::ShardStats`]: family set, release-year range,
//! per-benchmark score ranges) computed once at construction. The
//! [`DatabaseView::plan_machines`] override uses them to **prune shards**
//! that provably cannot satisfy a [`MachineFilter`], and
//! [`DatabaseView::gather`] can fan its run-hoisted row copies across the
//! persistent worker pool ([`ShardedPerfDatabase::with_parallelism`]) —
//! both are pure access-path optimizations that never change a returned
//! byte.
//!
//! The database also supports **streaming ingest**
//! ([`ShardedPerfDatabase::push_machines`]): new machines append to the
//! tail shard, whose statistics are folded forward in place, and the tail
//! splits into balanced pieces once it outgrows the
//! [`ShardedPerfDatabase::with_split_width`] threshold. Every non-empty
//! ingest bumps a monotonically increasing catalog version
//! ([`DatabaseView::catalog_version`]) that the serving layer uses to
//! invalidate its result cache. A catalog grown incrementally is
//! bitwise-identical to the same catalog built at once
//! (`tests/ingest_cache.rs` pins this, including across a split).

use std::sync::atomic::{AtomicUsize, Ordering};

use datatrans_linalg::{Matrix, VecView};
use datatrans_parallel::Parallelism;

use crate::benchmark::Benchmark;
use crate::database::{validate_ingest, MachineIngest, PerfDatabase};
use crate::machine::Machine;
use crate::query::{MachineFilter, PreparedFilter, QueryPlan, ShardStats};
use crate::view::{DatabaseView, DbReader, RowSegment};
use crate::{DatasetError, Result};

/// Row-count threshold below which a parallel gather is not worth the
/// dispatch: fall back to the inline copy loop.
const GATHER_MIN_PAR_ROWS: usize = 8;

/// One shard: a contiguous block of machine columns.
#[derive(Debug, Clone, PartialEq)]
pub struct Shard {
    /// Global index of the shard's first machine column.
    start: usize,
    /// `benchmarks × width` score block (row-major, like the dense matrix).
    scores: Matrix,
}

impl Shard {
    /// Global index of the shard's first machine column.
    pub fn start(&self) -> usize {
        self.start
    }

    /// Number of machine columns this shard owns.
    pub fn width(&self) -> usize {
        self.scores.cols()
    }

    /// Global machine index range `start .. start + width`.
    pub fn machine_range(&self) -> std::ops::Range<usize> {
        self.start..self.start + self.width()
    }

    /// The shard's `benchmarks × width` score block.
    pub fn scores(&self) -> &Matrix {
        &self.scores
    }

    /// This shard's segment of benchmark row `b` (scores of machines
    /// `start .. start + width`).
    ///
    /// # Panics
    ///
    /// Panics if `b` is out of bounds.
    pub fn row(&self, b: usize) -> &[f64] {
        self.scores.row(b)
    }
}

/// The performance database partitioned into column-range shards.
///
/// Implements [`DatabaseView`], so every consumer generic over the view
/// trait works on a sharded backing unchanged — and bitwise-identically.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardedPerfDatabase {
    benchmarks: Vec<Benchmark>,
    machines: Vec<Machine>,
    shards: Vec<Shard>,
    /// Per-shard aggregate statistics (family set, year range, score
    /// ranges), computed at construction and updated in place on ingest;
    /// consulted by the shard-pruning planner.
    stats: Vec<ShardStats>,
    /// Width of the trailing (narrow) shards at construction:
    /// `n_machines / n_shards`. Only meaningful while `balanced` holds.
    base_width: usize,
    /// Number of leading shards that are one column wider:
    /// `n_machines % n_shards`. Only meaningful while `balanced` holds.
    wide_shards: usize,
    /// Whether shard widths still follow the balanced construction layout
    /// (`base_width`/`wide_shards`). True from [`Self::from_dense`];
    /// cleared by [`Self::push_machines`], after which
    /// [`Self::shard_of`] binary-searches shard starts instead of using
    /// the O(1) arithmetic.
    balanced: bool,
    /// Width threshold past which the tail shard is split after an ingest
    /// (`None`: the tail grows without bound).
    split_width: Option<usize>,
    /// Ingest counter: 0 at construction, +1 per non-empty
    /// [`Self::push_machines`] call.
    catalog_version: u64,
    /// Worker threads for the per-row fan-out of [`DatabaseView::gather`].
    /// `Sequential` (the default) copies inline; any other value fans
    /// run-hoisted row copies across the persistent pool. Values are moved
    /// verbatim either way, so the gathered matrix is bitwise-identical at
    /// any thread count.
    parallelism: Parallelism,
}

impl ShardedPerfDatabase {
    /// Assembles a sharded database from parts (same validation as
    /// [`PerfDatabase::new`], then sharding).
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::Empty`]/[`DatasetError::InvalidConfig`] under
    /// the same conditions as [`PerfDatabase::new`], plus
    /// [`DatasetError::InvalidConfig`] for a shard count of zero or greater
    /// than the machine count.
    pub fn new(
        benchmarks: Vec<Benchmark>,
        machines: Vec<Machine>,
        scores: Vec<f64>,
        n_shards: usize,
    ) -> Result<Self> {
        let dense = PerfDatabase::new(benchmarks, machines, scores)?;
        Self::from_dense(&dense, n_shards)
    }

    /// Partitions a dense database into `n_shards` column-range shards.
    ///
    /// Shard widths are balanced: the first `n_machines % n_shards` shards
    /// get `n_machines / n_shards + 1` columns, the rest one less. Scores
    /// are copied verbatim.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::InvalidConfig`] if `n_shards` is zero or
    /// exceeds the machine count (a shard must own at least one column).
    pub fn from_dense(db: &PerfDatabase, n_shards: usize) -> Result<Self> {
        let n_machines = db.n_machines();
        if n_shards == 0 || n_shards > n_machines {
            return Err(DatasetError::InvalidConfig {
                name: "n_shards",
                value: format!("{n_shards} (must be 1..={n_machines} machines)"),
            });
        }
        let base_width = n_machines / n_shards;
        let wide_shards = n_machines % n_shards;
        let n_benchmarks = db.n_benchmarks();
        let mut shards = Vec::with_capacity(n_shards);
        let mut stats = Vec::with_capacity(n_shards);
        let mut start = 0;
        for s in 0..n_shards {
            let width = base_width + usize::from(s < wide_shards);
            let mut block = Vec::with_capacity(n_benchmarks * width);
            for b in 0..n_benchmarks {
                block.extend_from_slice(&db.benchmark_row(b)[start..start + width]);
            }
            let scores = Matrix::from_vec(n_benchmarks, width, block)
                .expect("shard block has exactly benchmarks × width entries");
            stats.push(ShardStats::compute(
                &db.machines()[start..start + width],
                &scores,
            ));
            shards.push(Shard { start, scores });
            start += width;
        }
        debug_assert_eq!(start, n_machines);
        Ok(ShardedPerfDatabase {
            benchmarks: db.benchmarks().to_vec(),
            machines: db.machines().to_vec(),
            shards,
            stats,
            base_width,
            wide_shards,
            balanced: true,
            split_width: None,
            catalog_version: db.catalog_version(),
            parallelism: Parallelism::Sequential,
        })
    }

    /// Sets the worker-thread configuration for the per-row gather
    /// fan-out (builder style; the default is [`Parallelism::Sequential`]).
    ///
    /// Parallelism changes only *who copies* the gathered rows, never the
    /// bytes copied — gathers stay bitwise-identical at any thread count.
    /// Leave it `Sequential` when gathers already run inside a harness
    /// fan-out's workers; nesting is safe (the pool spawns the shortfall)
    /// but oversubscribes cores.
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// The gather fan-out configuration.
    pub fn gather_parallelism(&self) -> Parallelism {
        self.parallelism
    }

    /// Sets the tail-shard split threshold (builder style): after an
    /// ingest, any shard wider than `width` columns is split into balanced
    /// pieces of at most `width` columns. The default (no threshold) lets
    /// the tail shard grow without bound.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::InvalidConfig`] if `width` is zero.
    pub fn with_split_width(mut self, width: usize) -> Result<Self> {
        if width == 0 {
            return Err(DatasetError::InvalidConfig {
                name: "split_width",
                value: "0 (a shard must own at least one column)".into(),
            });
        }
        self.split_width = Some(width);
        Ok(self)
    }

    /// The tail-shard split threshold, if one is set.
    pub fn split_width(&self) -> Option<usize> {
        self.split_width
    }

    /// The catalog version: 0 at construction (or the source dense
    /// database's version), incremented by every non-empty
    /// [`Self::push_machines`] call. See [`PerfDatabase::catalog_version`].
    pub fn catalog_version(&self) -> u64 {
        self.catalog_version
    }

    /// Appends machines to the **tail shard**, updating its
    /// [`ShardStats`] in place, then splits the tail into balanced pieces
    /// if it grew past the [`Self::with_split_width`] threshold. Bumps the
    /// catalog version.
    ///
    /// An empty batch is a no-op and does **not** bump the version. Scores
    /// are stored verbatim — a catalog grown through this method is
    /// bitwise-identical (every [`DatabaseView`] accessor) to the same
    /// catalog built at once, whatever the shard layout.
    ///
    /// # Errors
    ///
    /// Same conditions as [`PerfDatabase::push_machines`]; on error the
    /// database is unchanged.
    pub fn push_machines(&mut self, batch: &[MachineIngest]) -> Result<()> {
        if batch.is_empty() {
            return Ok(());
        }
        let n_benchmarks = self.benchmarks.len();
        validate_ingest(batch, n_benchmarks)?;
        // Rebuild the tail shard's block with the new columns appended.
        let tail = self.shards.last_mut().expect("at least one shard");
        let new_width = tail.scores.cols() + batch.len();
        let mut block = Vec::with_capacity(n_benchmarks * new_width);
        for b in 0..n_benchmarks {
            block.extend_from_slice(tail.scores.row(b));
            block.extend(batch.iter().map(|entry| entry.scores[b]));
        }
        tail.scores = Matrix::from_vec(n_benchmarks, new_width, block)
            .expect("appended shard block has exactly benchmarks × width entries");
        // Fold each appended machine into the tail's statistics in place
        // (an ingest entry's score vector IS its machine column).
        let stats = self.stats.last_mut().expect("one stats per shard");
        for entry in batch {
            stats.absorb_machine(&entry.machine, &entry.scores);
            self.machines.push(entry.machine.clone());
        }
        self.split_tail_if_oversized();
        // Widths no longer follow the balanced construction layout;
        // shard_of falls back to binary search.
        self.balanced = false;
        self.catalog_version += 1;
        Ok(())
    }

    /// Splits the tail shard into balanced pieces of at most `split_width`
    /// columns, recomputing each piece's statistics from its stored block.
    /// No-op without a threshold or while the tail fits.
    fn split_tail_if_oversized(&mut self) {
        let Some(limit) = self.split_width else {
            return;
        };
        let width = self.shards.last().expect("at least one shard").width();
        if width <= limit {
            return;
        }
        let tail = self.shards.pop().expect("at least one shard");
        self.stats.pop();
        let pieces = width.div_ceil(limit);
        let base = width / pieces;
        let wide = width % pieces;
        let n_benchmarks = self.benchmarks.len();
        let mut local_start = 0;
        for p in 0..pieces {
            let w = base + usize::from(p < wide);
            let mut block = Vec::with_capacity(n_benchmarks * w);
            for b in 0..n_benchmarks {
                block.extend_from_slice(&tail.row(b)[local_start..local_start + w]);
            }
            let shard = Shard {
                start: tail.start + local_start,
                scores: Matrix::from_vec(n_benchmarks, w, block)
                    .expect("split block has exactly benchmarks × width entries"),
            };
            self.stats.push(ShardStats::compute(
                &self.machines[shard.machine_range()],
                &shard.scores,
            ));
            self.shards.push(shard);
            local_start += w;
        }
        debug_assert_eq!(local_start, width);
    }

    /// The aggregate statistics of shard `s` (family set, year range,
    /// per-benchmark score ranges).
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of bounds.
    pub fn shard_stats(&self, s: usize) -> &ShardStats {
        &self.stats[s]
    }

    /// Reassembles the dense equivalent (bitwise-identical scores; the
    /// catalog version carries over).
    pub fn to_dense(&self) -> PerfDatabase {
        let n_benchmarks = self.benchmarks.len();
        let mut scores = Vec::with_capacity(n_benchmarks * self.machines.len());
        for b in 0..n_benchmarks {
            for shard in &self.shards {
                scores.extend_from_slice(shard.row(b));
            }
        }
        let mut dense = PerfDatabase::new(self.benchmarks.clone(), self.machines.clone(), scores)
            .expect("a valid sharded database reassembles into a valid dense one");
        dense.set_catalog_version(self.catalog_version);
        dense
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shards, in machine order.
    pub fn shards(&self) -> &[Shard] {
        &self.shards
    }

    /// Shard `s`.
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of bounds.
    pub fn shard(&self, s: usize) -> &Shard {
        &self.shards[s]
    }

    /// The machine metadata slice owned by shard `s`.
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of bounds.
    pub fn shard_machines(&self, s: usize) -> &[Machine] {
        &self.machines[self.shards[s].machine_range()]
    }

    /// Index of the shard owning machine column `m` — O(1) arithmetic
    /// while the balanced construction layout holds, binary search over
    /// shard starts once an ingest has perturbed the widths.
    ///
    /// # Panics
    ///
    /// Panics if `m` is out of bounds. Externally supplied indices (e.g.
    /// network input) should go through
    /// [`ShardedPerfDatabase::checked_shard_of`] instead.
    pub fn shard_of(&self, m: usize) -> usize {
        self.checked_shard_of(m)
            .unwrap_or_else(|e| panic!("shard_of: {e}"))
    }

    /// Fallible [`ShardedPerfDatabase::shard_of`]: returns a typed error
    /// instead of panicking when `m` is out of bounds, so externally
    /// supplied machine indices (the serving edge accepts arbitrary ones
    /// off the wire) can be resolved without risking the process.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::IndexOutOfBounds`] when
    /// `m >= n_machines()`; the bounds check runs *before* any shard
    /// arithmetic, so neither the balanced-layout division nor the
    /// `partition_point` fallback can underflow or index out of range.
    pub fn checked_shard_of(&self, m: usize) -> Result<usize> {
        if m >= self.machines.len() {
            return Err(DatasetError::IndexOutOfBounds {
                what: "machine",
                index: m,
                bound: self.machines.len(),
            });
        }
        Ok(if self.balanced {
            let wide_cols = self.wide_shards * (self.base_width + 1);
            if m < wide_cols {
                m / (self.base_width + 1)
            } else {
                self.wide_shards + (m - wide_cols) / self.base_width
            }
        } else {
            // Shard starts are strictly increasing and start at 0; the
            // owner is the last shard starting at or before m.
            self.shards.partition_point(|s| s.start <= m) - 1
        })
    }

    /// Locates machine column `m`: `(shard index, column local to shard)`.
    fn locate(&self, m: usize) -> (usize, usize) {
        let s = self.shard_of(m);
        (s, m - self.shards[s].start)
    }

    /// Hoists a requested machine-index sequence into maximal copy runs:
    /// each run is a stretch of columns that are consecutive *both* in the
    /// request and within one shard's storage, so it copies as one
    /// `copy_from_slice` per output row. Family and era selections are
    /// contiguous ranges, so they hoist into roughly one run per shard
    /// touched; a fully scattered request degenerates to width-1 runs.
    fn gather_runs(&self, machines: &[usize]) -> Vec<GatherRun> {
        let mut runs: Vec<GatherRun> = Vec::new();
        for (out, &m) in machines.iter().enumerate() {
            let (shard, local) = self.locate(m);
            if let Some(last) = runs.last_mut() {
                if last.shard == shard && last.local_start + last.len == local {
                    last.len += 1;
                    continue;
                }
            }
            runs.push(GatherRun {
                out_start: out,
                shard,
                local_start: local,
                len: 1,
            });
        }
        runs
    }

    /// Copies one output row of a gather through the hoisted runs.
    fn gather_row_into(&self, b: usize, runs: &[GatherRun], out: &mut [f64]) {
        for run in runs {
            let src = &self.shards[run.shard].row(b)[run.local_start..run.local_start + run.len];
            out[run.out_start..run.out_start + run.len].copy_from_slice(src);
        }
    }
}

/// One hoisted copy run of a gather: `len` request-consecutive columns
/// stored contiguously in `shard` starting at `local_start`, landing at
/// `out_start` in the output row.
#[derive(Debug, Clone, Copy)]
struct GatherRun {
    out_start: usize,
    shard: usize,
    local_start: usize,
    len: usize,
}

impl DatabaseView for ShardedPerfDatabase {
    fn n_benchmarks(&self) -> usize {
        self.benchmarks.len()
    }

    fn n_machines(&self) -> usize {
        self.machines.len()
    }

    fn benchmarks(&self) -> &[Benchmark] {
        &self.benchmarks
    }

    fn machines(&self) -> &[Machine] {
        &self.machines
    }

    fn score(&self, b: usize, m: usize) -> f64 {
        assert!(b < self.benchmarks.len(), "benchmark index out of bounds");
        let (s, local) = self.locate(m);
        self.shards[s].scores[(b, local)]
    }

    fn machine_column(&self, m: usize) -> VecView<'_> {
        let (s, local) = self.locate(m);
        self.shards[s].scores.col_view(local)
    }

    fn benchmark_row_segments(&self, b: usize) -> Vec<RowSegment<'_>> {
        self.shards
            .iter()
            .map(|shard| RowSegment {
                start: shard.start,
                scores: shard.row(b),
            })
            .collect()
    }

    fn gather(&self, benchmarks: &[usize], machines: &[usize]) -> Matrix {
        // Locate every requested column once, hoisting request-consecutive
        // columns into per-shard copy runs; then copy row-major so each
        // shard block is read sequentially per output row. Values are moved
        // verbatim, so the result is bitwise-identical to a dense gather —
        // and independent of how rows are distributed across workers.
        for &b in benchmarks {
            assert!(b < self.benchmarks.len(), "benchmark index out of bounds");
        }
        let runs = self.gather_runs(machines);
        let threads = self.parallelism.thread_count().min(benchmarks.len());
        if threads > 1 && benchmarks.len() >= GATHER_MIN_PAR_ROWS {
            // Fan contiguous row chunks across the persistent pool — one
            // block allocation and one dispatch per worker, one merge copy
            // per chunk. Chunk boundaries cannot affect the bytes: every
            // row is the same verbatim copy sequence wherever it runs.
            let width = machines.len();
            let chunk_rows = benchmarks.len().div_ceil(threads);
            let n_chunks = benchmarks.len().div_ceil(chunk_rows);
            let chunks: Vec<Vec<f64>> = self.parallelism.par_map_indexed(1, n_chunks, |c| {
                let lo = c * chunk_rows;
                let hi = (lo + chunk_rows).min(benchmarks.len());
                let mut block = vec![0.0; (hi - lo) * width];
                for (i, &b) in benchmarks[lo..hi].iter().enumerate() {
                    self.gather_row_into(b, &runs, &mut block[i * width..(i + 1) * width]);
                }
                block
            });
            let mut data = Vec::with_capacity(benchmarks.len() * width);
            for chunk in &chunks {
                data.extend_from_slice(chunk);
            }
            return Matrix::from_vec(benchmarks.len(), width, data)
                .expect("gathered chunks have exactly benchmarks × machines entries");
        }
        let mut out = Matrix::zeros(benchmarks.len(), machines.len());
        for (i, &b) in benchmarks.iter().enumerate() {
            self.gather_row_into(b, &runs, out.row_mut(i));
        }
        out
    }

    fn n_shards(&self) -> usize {
        self.shards.len()
    }

    fn catalog_version(&self) -> u64 {
        self.catalog_version
    }

    fn plan_machines(&self, filter: &MachineFilter) -> QueryPlan {
        // Conservative shard pruning: skip a shard only when its
        // statistics prove no machine can match (family absent, year
        // ranges disjoint, best score below threshold) or the subset
        // clause has no member in the shard's machine range. Scanned
        // shards are visited in machine order, so the machine list is
        // identical to the full scan's.
        let prepared = PreparedFilter::new(filter);
        let mut machines = Vec::new();
        let mut shards_scanned = 0;
        let mut shards_pruned = 0;
        for (s, shard) in self.shards.iter().enumerate() {
            let range = shard.machine_range();
            if !self.stats[s].may_match(filter) || !prepared.subset_intersects(range.clone()) {
                shards_pruned += 1;
                continue;
            }
            shards_scanned += 1;
            machines.extend(range.filter(|&m| prepared.matches(self, m)));
        }
        QueryPlan {
            machines,
            shards_scanned,
            shards_pruned,
        }
    }

    fn reader(&self) -> DbReader<'_> {
        DbReader::Sharded(ShardReader {
            db: self,
            last: AtomicUsize::new(0),
        })
    }
}

/// A per-worker read handle over a sharded database that caches the shard
/// serving the most recent lookup.
///
/// Harness workers sweep machine ranges (a family's columns, an era's
/// columns) that live in one or two shards; the cache turns the per-lookup
/// shard location into a single range check. The cache only affects lookup
/// *speed* — the value read is always the same stored `f64` — which is the
/// per-worker-scratch contract of `Parallelism::par_map_with`: scratch
/// holds no part of the computed result.
#[derive(Debug)]
pub struct ShardReader<'a> {
    db: &'a ShardedPerfDatabase,
    /// Index of the shard that served the last lookup (relaxed atomic so
    /// the handle stays `Sync` for `&dyn DatabaseView` use; handles are
    /// per-worker, so there is no contention in practice).
    last: AtomicUsize,
}

impl<'a> ShardReader<'a> {
    /// The underlying sharded database.
    pub fn database(&self) -> &'a ShardedPerfDatabase {
        self.db
    }

    /// Locates machine `m`, consulting the cached shard first.
    fn locate(&self, m: usize) -> (usize, usize) {
        assert!(m < self.db.machines.len(), "machine index out of bounds");
        let cached = self.last.load(Ordering::Relaxed);
        if let Some(shard) = self.db.shards.get(cached) {
            if shard.machine_range().contains(&m) {
                return (cached, m - shard.start);
            }
        }
        let (s, local) = self.db.locate(m);
        self.last.store(s, Ordering::Relaxed);
        (s, local)
    }
}

impl DatabaseView for ShardReader<'_> {
    fn n_benchmarks(&self) -> usize {
        self.db.benchmarks.len()
    }

    fn n_machines(&self) -> usize {
        self.db.machines.len()
    }

    fn benchmarks(&self) -> &[Benchmark] {
        &self.db.benchmarks
    }

    fn machines(&self) -> &[Machine] {
        &self.db.machines
    }

    fn score(&self, b: usize, m: usize) -> f64 {
        assert!(
            b < self.db.benchmarks.len(),
            "benchmark index out of bounds"
        );
        let (s, local) = self.locate(m);
        self.db.shards[s].scores[(b, local)]
    }

    fn machine_column(&self, m: usize) -> VecView<'_> {
        let (s, local) = self.locate(m);
        self.db.shards[s].scores.col_view(local)
    }

    fn benchmark_row_segments(&self, b: usize) -> Vec<RowSegment<'_>> {
        self.db.benchmark_row_segments(b)
    }

    fn gather(&self, benchmarks: &[usize], machines: &[usize]) -> Matrix {
        // The bulk gather already locates each column exactly once; the
        // cursor would add nothing.
        self.db.gather(benchmarks, machines)
    }

    fn n_shards(&self) -> usize {
        self.db.shards.len()
    }

    fn catalog_version(&self) -> u64 {
        self.db.catalog_version
    }

    fn plan_machines(&self, filter: &MachineFilter) -> QueryPlan {
        self.db.plan_machines(filter)
    }

    fn reader(&self) -> DbReader<'_> {
        self.db.reader()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate, DatasetConfig};

    fn dense() -> PerfDatabase {
        generate(&DatasetConfig::default()).unwrap()
    }

    #[test]
    fn shard_widths_are_balanced_and_cover_all_machines() {
        let db = dense();
        for n_shards in [1, 2, 3, 4, 5, 8, 116, 117] {
            let sharded = ShardedPerfDatabase::from_dense(&db, n_shards).unwrap();
            assert_eq!(sharded.n_shards(), n_shards);
            let widths: Vec<usize> = sharded.shards().iter().map(Shard::width).collect();
            assert_eq!(widths.iter().sum::<usize>(), 117);
            let min = *widths.iter().min().unwrap();
            let max = *widths.iter().max().unwrap();
            assert!(max - min <= 1, "{n_shards} shards: widths {widths:?}");
            // Contiguous, in order.
            let mut next = 0;
            for shard in sharded.shards() {
                assert_eq!(shard.start(), next);
                next = shard.machine_range().end;
            }
            assert_eq!(next, 117);
        }
    }

    #[test]
    fn shard_of_agrees_with_ranges() {
        let db = dense();
        for n_shards in [1, 2, 5, 39, 117] {
            let sharded = ShardedPerfDatabase::from_dense(&db, n_shards).unwrap();
            for m in 0..117 {
                let s = sharded.shard_of(m);
                assert!(
                    sharded.shard(s).machine_range().contains(&m),
                    "{n_shards} shards, machine {m} -> shard {s}"
                );
            }
        }
    }

    #[test]
    fn checked_shard_of_rejects_out_of_range_machines() {
        // Regression: an arbitrary (e.g. wire-supplied) machine index at or
        // past n_machines must yield a typed error, never a panic — on the
        // balanced construction layout AND on the binary-search fallback an
        // ingest switches to.
        let db = dense();
        let mut sharded = ShardedPerfDatabase::from_dense(&db, 8).unwrap();
        for m in [117, 118, 1_000_000, usize::MAX] {
            assert_eq!(
                sharded.checked_shard_of(m),
                Err(DatasetError::IndexOutOfBounds {
                    what: "machine",
                    index: m,
                    bound: 117,
                })
            );
        }
        let batch = crate::generator::synthesize_ingest(7, sharded.benchmarks(), 3, 0.015).unwrap();
        sharded.push_machines(&batch).unwrap();
        for m in 0..120 {
            let s = sharded.checked_shard_of(m).unwrap();
            assert!(sharded.shard(s).machine_range().contains(&m));
            assert_eq!(s, sharded.shard_of(m));
        }
        assert_eq!(
            sharded.checked_shard_of(120),
            Err(DatasetError::IndexOutOfBounds {
                what: "machine",
                index: 120,
                bound: 120,
            })
        );
    }

    #[test]
    fn round_trips_through_dense_bitwise() {
        let db = dense();
        for n_shards in [1, 4, 7, 117] {
            let sharded = ShardedPerfDatabase::from_dense(&db, n_shards).unwrap();
            assert_eq!(sharded.to_dense(), db, "{n_shards} shards");
        }
    }

    #[test]
    fn shard_machines_slice_matches_metadata() {
        let db = dense();
        let sharded = ShardedPerfDatabase::from_dense(&db, 5).unwrap();
        for s in 0..sharded.n_shards() {
            let range = sharded.shard(s).machine_range();
            assert_eq!(sharded.shard_machines(s), &db.machines()[range]);
        }
    }

    #[test]
    fn rejects_invalid_shard_counts() {
        let db = dense();
        assert!(matches!(
            ShardedPerfDatabase::from_dense(&db, 0),
            Err(DatasetError::InvalidConfig {
                name: "n_shards",
                ..
            })
        ));
        assert!(matches!(
            ShardedPerfDatabase::from_dense(&db, 118),
            Err(DatasetError::InvalidConfig {
                name: "n_shards",
                ..
            })
        ));
    }

    #[test]
    fn shard_stats_cover_every_machine() {
        let db = dense();
        let sharded = ShardedPerfDatabase::from_dense(&db, 5).unwrap();
        for s in 0..sharded.n_shards() {
            let stats = sharded.shard_stats(s);
            let (y_min, y_max) = stats.year_range();
            for m in sharded.shard(s).machine_range() {
                let machine = &db.machines()[m];
                assert!(stats.families().contains(&machine.family), "shard {s}");
                assert!((y_min..=y_max).contains(&machine.year), "shard {s}");
                for b in 0..db.n_benchmarks() {
                    let (lo, hi) = stats.score_range(b);
                    let score = db.score(b, m);
                    assert!(lo <= score && score <= hi, "shard {s} b={b} m={m}");
                }
            }
        }
    }

    #[test]
    fn pruned_plans_match_full_scans_on_seeded_random_catalogs() {
        use crate::generator::{generate_scaled, ScaleConfig};
        use crate::machine::ProcessorFamily;
        use crate::query::{scan_machines, MachineFilter};

        // Seeded random shapes and shard counts (including non-dividing
        // ones): for every filter, the statistics-pruned plan must list
        // exactly the machines a full metadata scan finds, and a gather of
        // the planned columns must be bitwise-identical to the dense
        // backing's.
        for (seed, n_machines, n_shards) in [
            (1u64, 117usize, 5usize),
            (2, 64, 7),
            (3, 230, 9),
            (4, 33, 33),
        ] {
            let db = generate_scaled(&ScaleConfig {
                seed: 0x9A17_05EC ^ seed,
                n_machines,
                ..ScaleConfig::default()
            })
            .unwrap();
            let sharded = ShardedPerfDatabase::from_dense(&db, n_shards).unwrap();
            let threshold = db.score(2, n_machines / 2);
            let filters = [
                MachineFilter::all(),
                MachineFilter::family(ProcessorFamily::Xeon),
                MachineFilter::family(ProcessorFamily::Itanium).with_years(2007, 2009),
                MachineFilter::years(2004, 2006),
                MachineFilter::years(1990, 1991), // matches nothing
                MachineFilter::all().with_min_score(2, threshold),
                MachineFilter::all().with_subset(vec![0, n_machines / 2, n_machines - 1]),
                MachineFilter::family(ProcessorFamily::Power6)
                    .with_subset((0..n_machines).step_by(3).collect()),
            ];
            for filter in &filters {
                let plan = DatabaseView::plan_machines(&sharded, filter);
                let full = scan_machines(&db, filter);
                assert_eq!(
                    plan.machines, full,
                    "{n_machines} machines @ {n_shards} shards, {filter:?}"
                );
                assert_eq!(plan.shards_scanned + plan.shards_pruned, n_shards);
                let rows: Vec<usize> = (0..db.n_benchmarks()).collect();
                let sharded_gather = DatabaseView::gather(&sharded, &rows, &plan.machines);
                let dense_gather = DatabaseView::gather(&db, &rows, &full);
                assert_eq!(sharded_gather.shape(), dense_gather.shape());
                for i in 0..dense_gather.rows() {
                    for j in 0..dense_gather.cols() {
                        assert_eq!(
                            sharded_gather[(i, j)].to_bits(),
                            dense_gather[(i, j)].to_bits()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn family_plans_actually_prune_shards() {
        let db = dense();
        let sharded = ShardedPerfDatabase::from_dense(&db, 8).unwrap();
        // The catalog keeps families contiguous, so a one-family
        // restriction must touch only the shard(s) spanning that family's
        // column range.
        let xeons = db.machines_in_family(crate::machine::ProcessorFamily::Xeon);
        let first_shard = sharded.shard_of(xeons[0]);
        let last_shard = sharded.shard_of(*xeons.last().unwrap());
        let plan = DatabaseView::plan_machines(
            &sharded,
            &MachineFilter::family(crate::machine::ProcessorFamily::Xeon),
        );
        assert_eq!(plan.machines, xeons);
        assert!(plan.shards_scanned <= last_shard - first_shard + 1);
        assert!(plan.shards_pruned >= 8 - (last_shard - first_shard + 1));
        assert!(plan.shards_pruned > 0, "8 shards, one family: must prune");
    }

    #[test]
    fn parallel_gather_matches_sequential_bitwise() {
        let db = dense();
        let rows: Vec<usize> = (0..db.n_benchmarks()).collect();
        // Mixed request: a contiguous family range, scattered columns, and
        // repeated + descending indices to defeat run coalescing.
        let mut cols: Vec<usize> = db.machines_in_family(crate::machine::ProcessorFamily::Xeon);
        cols.extend((0..db.n_machines()).step_by(13));
        cols.extend([116, 57, 57, 0]);
        for n_shards in [1usize, 4, 7] {
            let sequential = ShardedPerfDatabase::from_dense(&db, n_shards).unwrap();
            let expected = DatabaseView::gather(&sequential, &rows, &cols);
            for threads in [2usize, 4] {
                let parallel = ShardedPerfDatabase::from_dense(&db, n_shards)
                    .unwrap()
                    .with_parallelism(Parallelism::Threads(threads));
                assert_eq!(parallel.gather_parallelism(), Parallelism::Threads(threads));
                let got = DatabaseView::gather(&parallel, &rows, &cols);
                assert_eq!(got.shape(), expected.shape());
                for i in 0..expected.rows() {
                    for j in 0..expected.cols() {
                        assert_eq!(
                            got[(i, j)].to_bits(),
                            expected[(i, j)].to_bits(),
                            "{n_shards} shards, {threads} threads, ({i}, {j})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn empty_index_gathers_are_well_formed() {
        let db = dense();
        let sharded = ShardedPerfDatabase::from_dense(&db, 4)
            .unwrap()
            .with_parallelism(Parallelism::Threads(2));
        let rows: Vec<usize> = (0..db.n_benchmarks()).collect();
        let cols: Vec<usize> = vec![3, 99];
        for view in [&sharded as &dyn DatabaseView, &db as &dyn DatabaseView] {
            assert_eq!(view.gather(&[], &cols).shape(), (0, 2));
            assert_eq!(view.gather(&rows, &[]).shape(), (db.n_benchmarks(), 0));
            assert_eq!(view.gather(&[], &[]).shape(), (0, 0));
        }
    }

    fn ingest_batch(n: usize, offset: usize, db: &PerfDatabase) -> Vec<MachineIngest> {
        // Recycle existing catalog columns as ingest entries so scores are
        // valid and easy to cross-check.
        (0..n)
            .map(|i| {
                let src = (offset + i) % db.n_machines();
                MachineIngest {
                    machine: db.machines()[src].clone(),
                    scores: (0..db.n_benchmarks()).map(|b| db.score(b, src)).collect(),
                }
            })
            .collect()
    }

    #[test]
    fn push_appends_to_tail_and_updates_stats_in_place() {
        let db = dense();
        let mut sharded = ShardedPerfDatabase::from_dense(&db, 5).unwrap();
        let batch = ingest_batch(4, 7, &db);
        sharded.push_machines(&batch).unwrap();
        assert_eq!(sharded.n_shards(), 5, "no threshold: tail absorbs");
        assert_eq!(sharded.n_machines(), 121);
        assert_eq!(sharded.catalog_version(), 1);
        // Appended columns read back bitwise.
        for (i, entry) in batch.iter().enumerate() {
            let m = 117 + i;
            assert_eq!(&sharded.machines()[m], &entry.machine);
            for b in 0..sharded.n_benchmarks() {
                assert_eq!(
                    DatabaseView::score(&sharded, b, m).to_bits(),
                    entry.scores[b].to_bits()
                );
            }
        }
        // Tail stats still cover every machine in the tail's (grown) range.
        let s = sharded.n_shards() - 1;
        let stats = sharded.shard_stats(s);
        let (y_min, y_max) = stats.year_range();
        for m in sharded.shard(s).machine_range() {
            let machine = &sharded.machines()[m];
            assert!(stats.families().contains(&machine.family));
            assert!((y_min..=y_max).contains(&machine.year));
            for b in 0..sharded.n_benchmarks() {
                let (lo, hi) = stats.score_range(b);
                let score = DatabaseView::score(&sharded, b, m);
                assert!(lo <= score && score <= hi, "b={b} m={m}");
            }
        }
    }

    #[test]
    fn oversized_tail_splits_into_balanced_covering_pieces() {
        let db = dense();
        let mut sharded = ShardedPerfDatabase::from_dense(&db, 5)
            .unwrap()
            .with_split_width(25)
            .unwrap();
        assert_eq!(sharded.split_width(), Some(25));
        // Tail starts at width 23; +30 = 53 > 25 splits into ceil(53/25)=3
        // pieces of widths 18/18/17.
        sharded.push_machines(&ingest_batch(30, 0, &db)).unwrap();
        assert_eq!(sharded.n_shards(), 7);
        let widths: Vec<usize> = sharded.shards().iter().map(Shard::width).collect();
        assert_eq!(&widths[4..], &[18, 18, 17]);
        assert!(widths.iter().all(|&w| w <= 25), "widths {widths:?}");
        // Shards stay contiguous and cover everything; shard_of agrees.
        let mut next = 0;
        for (s, shard) in sharded.shards().iter().enumerate() {
            assert_eq!(shard.start(), next);
            next = shard.machine_range().end;
            for m in shard.machine_range() {
                assert_eq!(sharded.shard_of(m), s);
            }
        }
        assert_eq!(next, 147);
        // Every split piece's stats cover its machines.
        for s in 0..sharded.n_shards() {
            let stats = sharded.shard_stats(s);
            for m in sharded.shard(s).machine_range() {
                for b in 0..sharded.n_benchmarks() {
                    let (lo, hi) = stats.score_range(b);
                    let score = DatabaseView::score(&sharded, b, m);
                    assert!(lo <= score && score <= hi, "shard {s} b={b} m={m}");
                }
            }
        }
    }

    #[test]
    fn empty_push_is_a_noop_without_version_bump() {
        let db = dense();
        let mut sharded = ShardedPerfDatabase::from_dense(&db, 4).unwrap();
        let before = sharded.clone();
        sharded.push_machines(&[]).unwrap();
        assert_eq!(sharded, before);
        assert_eq!(sharded.catalog_version(), 0);
    }

    #[test]
    fn mismatched_ingest_is_rejected_and_leaves_db_unchanged() {
        let db = dense();
        let mut sharded = ShardedPerfDatabase::from_dense(&db, 4).unwrap();
        let before = sharded.clone();
        let mut batch = ingest_batch(1, 0, &db);
        batch[0].scores.pop();
        assert!(matches!(
            sharded.push_machines(&batch),
            Err(DatasetError::BenchmarkCountMismatch {
                expected: 29,
                got: 28
            })
        ));
        assert_eq!(sharded, before);
    }

    #[test]
    fn version_is_monotonic_and_survives_to_dense() {
        let db = dense();
        let mut sharded = ShardedPerfDatabase::from_dense(&db, 4).unwrap();
        assert_eq!(DatabaseView::catalog_version(&sharded), 0);
        for expected in 1..=3u64 {
            sharded.push_machines(&ingest_batch(2, 0, &db)).unwrap();
            assert_eq!(sharded.catalog_version(), expected);
        }
        assert_eq!(sharded.to_dense().catalog_version(), 3);
        assert_eq!(sharded.reader().catalog_version(), 3);
    }

    #[test]
    fn rejects_zero_split_width() {
        let db = dense();
        assert!(matches!(
            ShardedPerfDatabase::from_dense(&db, 4)
                .unwrap()
                .with_split_width(0),
            Err(DatasetError::InvalidConfig {
                name: "split_width",
                ..
            })
        ));
    }

    #[test]
    fn reader_cache_never_changes_values() {
        let db = dense();
        let sharded = ShardedPerfDatabase::from_dense(&db, 4).unwrap();
        let reader = sharded.reader();
        // Alternate between distant columns so the cache keeps missing,
        // then re-hitting; every value must still match the dense backing.
        for &m in &[0usize, 116, 1, 115, 58, 59, 58, 0] {
            for b in 0..db.n_benchmarks() {
                assert_eq!(
                    reader.score(b, m).to_bits(),
                    db.score(b, m).to_bits(),
                    "b={b} m={m}"
                );
            }
        }
    }
}

//! Column-range sharding of the performance database.
//!
//! A [`ShardedPerfDatabase`] stores the same logical `benchmarks ×
//! machines` table as [`PerfDatabase`], partitioned by **machine range**:
//! shard `s` owns a contiguous block of machine columns as its own dense
//! [`Matrix`] plus the matching slice of machine metadata. Machine ranges
//! are balanced — when the shard count does not divide the machine count,
//! the first `n_machines % n_shards` shards are one column wider.
//!
//! Partitioning by machine range matches the read patterns of the
//! evaluation harnesses: a processor-family fold or a release-year era
//! selects machine index ranges that are contiguous in catalog order, so
//! those selections read from one shard (or a handful of neighbours) —
//! though a fold's complementary predictive gather still spans the
//! remaining shards. Scores are **copied, never recomputed** when
//! sharding, so every accessor is bitwise-identical to the dense backing
//! (`tests/shard_equivalence.rs` pins this).

use std::sync::atomic::{AtomicUsize, Ordering};

use datatrans_linalg::{Matrix, VecView};

use crate::benchmark::Benchmark;
use crate::database::PerfDatabase;
use crate::machine::Machine;
use crate::view::{DatabaseView, DbReader, RowSegment};
use crate::{DatasetError, Result};

/// One shard: a contiguous block of machine columns.
#[derive(Debug, Clone, PartialEq)]
pub struct Shard {
    /// Global index of the shard's first machine column.
    start: usize,
    /// `benchmarks × width` score block (row-major, like the dense matrix).
    scores: Matrix,
}

impl Shard {
    /// Global index of the shard's first machine column.
    pub fn start(&self) -> usize {
        self.start
    }

    /// Number of machine columns this shard owns.
    pub fn width(&self) -> usize {
        self.scores.cols()
    }

    /// Global machine index range `start .. start + width`.
    pub fn machine_range(&self) -> std::ops::Range<usize> {
        self.start..self.start + self.width()
    }

    /// The shard's `benchmarks × width` score block.
    pub fn scores(&self) -> &Matrix {
        &self.scores
    }

    /// This shard's segment of benchmark row `b` (scores of machines
    /// `start .. start + width`).
    ///
    /// # Panics
    ///
    /// Panics if `b` is out of bounds.
    pub fn row(&self, b: usize) -> &[f64] {
        self.scores.row(b)
    }
}

/// The performance database partitioned into column-range shards.
///
/// Implements [`DatabaseView`], so every consumer generic over the view
/// trait works on a sharded backing unchanged — and bitwise-identically.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardedPerfDatabase {
    benchmarks: Vec<Benchmark>,
    machines: Vec<Machine>,
    shards: Vec<Shard>,
    /// Width of the trailing (narrow) shards: `n_machines / n_shards`.
    base_width: usize,
    /// Number of leading shards that are one column wider:
    /// `n_machines % n_shards`.
    wide_shards: usize,
}

impl ShardedPerfDatabase {
    /// Assembles a sharded database from parts (same validation as
    /// [`PerfDatabase::new`], then sharding).
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::Empty`]/[`DatasetError::InvalidConfig`] under
    /// the same conditions as [`PerfDatabase::new`], plus
    /// [`DatasetError::InvalidConfig`] for a shard count of zero or greater
    /// than the machine count.
    pub fn new(
        benchmarks: Vec<Benchmark>,
        machines: Vec<Machine>,
        scores: Vec<f64>,
        n_shards: usize,
    ) -> Result<Self> {
        let dense = PerfDatabase::new(benchmarks, machines, scores)?;
        Self::from_dense(&dense, n_shards)
    }

    /// Partitions a dense database into `n_shards` column-range shards.
    ///
    /// Shard widths are balanced: the first `n_machines % n_shards` shards
    /// get `n_machines / n_shards + 1` columns, the rest one less. Scores
    /// are copied verbatim.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::InvalidConfig`] if `n_shards` is zero or
    /// exceeds the machine count (a shard must own at least one column).
    pub fn from_dense(db: &PerfDatabase, n_shards: usize) -> Result<Self> {
        let n_machines = db.n_machines();
        if n_shards == 0 || n_shards > n_machines {
            return Err(DatasetError::InvalidConfig {
                name: "n_shards",
                value: format!("{n_shards} (must be 1..={n_machines} machines)"),
            });
        }
        let base_width = n_machines / n_shards;
        let wide_shards = n_machines % n_shards;
        let n_benchmarks = db.n_benchmarks();
        let mut shards = Vec::with_capacity(n_shards);
        let mut start = 0;
        for s in 0..n_shards {
            let width = base_width + usize::from(s < wide_shards);
            let mut block = Vec::with_capacity(n_benchmarks * width);
            for b in 0..n_benchmarks {
                block.extend_from_slice(&db.benchmark_row(b)[start..start + width]);
            }
            let scores = Matrix::from_vec(n_benchmarks, width, block)
                .expect("shard block has exactly benchmarks × width entries");
            shards.push(Shard { start, scores });
            start += width;
        }
        debug_assert_eq!(start, n_machines);
        Ok(ShardedPerfDatabase {
            benchmarks: db.benchmarks().to_vec(),
            machines: db.machines().to_vec(),
            shards,
            base_width,
            wide_shards,
        })
    }

    /// Reassembles the dense equivalent (bitwise-identical scores).
    pub fn to_dense(&self) -> PerfDatabase {
        let n_benchmarks = self.benchmarks.len();
        let mut scores = Vec::with_capacity(n_benchmarks * self.machines.len());
        for b in 0..n_benchmarks {
            for shard in &self.shards {
                scores.extend_from_slice(shard.row(b));
            }
        }
        PerfDatabase::new(self.benchmarks.clone(), self.machines.clone(), scores)
            .expect("a valid sharded database reassembles into a valid dense one")
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shards, in machine order.
    pub fn shards(&self) -> &[Shard] {
        &self.shards
    }

    /// Shard `s`.
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of bounds.
    pub fn shard(&self, s: usize) -> &Shard {
        &self.shards[s]
    }

    /// The machine metadata slice owned by shard `s`.
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of bounds.
    pub fn shard_machines(&self, s: usize) -> &[Machine] {
        &self.machines[self.shards[s].machine_range()]
    }

    /// Index of the shard owning machine column `m` (O(1): shard widths
    /// are balanced by construction).
    ///
    /// # Panics
    ///
    /// Panics if `m` is out of bounds.
    pub fn shard_of(&self, m: usize) -> usize {
        assert!(m < self.machines.len(), "machine index out of bounds");
        let wide_cols = self.wide_shards * (self.base_width + 1);
        if m < wide_cols {
            m / (self.base_width + 1)
        } else {
            self.wide_shards + (m - wide_cols) / self.base_width
        }
    }

    /// Locates machine column `m`: `(shard index, column local to shard)`.
    fn locate(&self, m: usize) -> (usize, usize) {
        let s = self.shard_of(m);
        (s, m - self.shards[s].start)
    }
}

impl DatabaseView for ShardedPerfDatabase {
    fn n_benchmarks(&self) -> usize {
        self.benchmarks.len()
    }

    fn n_machines(&self) -> usize {
        self.machines.len()
    }

    fn benchmarks(&self) -> &[Benchmark] {
        &self.benchmarks
    }

    fn machines(&self) -> &[Machine] {
        &self.machines
    }

    fn score(&self, b: usize, m: usize) -> f64 {
        assert!(b < self.benchmarks.len(), "benchmark index out of bounds");
        let (s, local) = self.locate(m);
        self.shards[s].scores[(b, local)]
    }

    fn machine_column(&self, m: usize) -> VecView<'_> {
        let (s, local) = self.locate(m);
        self.shards[s].scores.col_view(local)
    }

    fn benchmark_row_segments(&self, b: usize) -> Vec<RowSegment<'_>> {
        self.shards
            .iter()
            .map(|shard| RowSegment {
                start: shard.start,
                scores: shard.row(b),
            })
            .collect()
    }

    fn gather(&self, benchmarks: &[usize], machines: &[usize]) -> Matrix {
        // Locate every requested column once, then copy row-major so each
        // shard block is read sequentially per output row. Values are moved
        // verbatim, so the result is bitwise-identical to a dense gather.
        let locations: Vec<(usize, usize)> = machines.iter().map(|&m| self.locate(m)).collect();
        for &b in benchmarks {
            assert!(b < self.benchmarks.len(), "benchmark index out of bounds");
        }
        let mut out = Matrix::zeros(benchmarks.len(), machines.len());
        for (i, &b) in benchmarks.iter().enumerate() {
            let row = out.row_mut(i);
            // Requested columns cluster into runs within one shard (family
            // and era selections are contiguous ranges), so resolve the
            // shard's row slice once per run, not once per element.
            let mut current_shard = usize::MAX;
            let mut shard_row: &[f64] = &[];
            for (slot, &(s, local)) in row.iter_mut().zip(&locations) {
                if s != current_shard {
                    shard_row = self.shards[s].row(b);
                    current_shard = s;
                }
                *slot = shard_row[local];
            }
        }
        out
    }

    fn n_shards(&self) -> usize {
        self.shards.len()
    }

    fn reader(&self) -> DbReader<'_> {
        DbReader::Sharded(ShardReader {
            db: self,
            last: AtomicUsize::new(0),
        })
    }
}

/// A per-worker read handle over a sharded database that caches the shard
/// serving the most recent lookup.
///
/// Harness workers sweep machine ranges (a family's columns, an era's
/// columns) that live in one or two shards; the cache turns the per-lookup
/// shard location into a single range check. The cache only affects lookup
/// *speed* — the value read is always the same stored `f64` — which is the
/// per-worker-scratch contract of `Parallelism::par_map_with`: scratch
/// holds no part of the computed result.
#[derive(Debug)]
pub struct ShardReader<'a> {
    db: &'a ShardedPerfDatabase,
    /// Index of the shard that served the last lookup (relaxed atomic so
    /// the handle stays `Sync` for `&dyn DatabaseView` use; handles are
    /// per-worker, so there is no contention in practice).
    last: AtomicUsize,
}

impl<'a> ShardReader<'a> {
    /// The underlying sharded database.
    pub fn database(&self) -> &'a ShardedPerfDatabase {
        self.db
    }

    /// Locates machine `m`, consulting the cached shard first.
    fn locate(&self, m: usize) -> (usize, usize) {
        assert!(m < self.db.machines.len(), "machine index out of bounds");
        let cached = self.last.load(Ordering::Relaxed);
        if let Some(shard) = self.db.shards.get(cached) {
            if shard.machine_range().contains(&m) {
                return (cached, m - shard.start);
            }
        }
        let (s, local) = self.db.locate(m);
        self.last.store(s, Ordering::Relaxed);
        (s, local)
    }
}

impl DatabaseView for ShardReader<'_> {
    fn n_benchmarks(&self) -> usize {
        self.db.benchmarks.len()
    }

    fn n_machines(&self) -> usize {
        self.db.machines.len()
    }

    fn benchmarks(&self) -> &[Benchmark] {
        &self.db.benchmarks
    }

    fn machines(&self) -> &[Machine] {
        &self.db.machines
    }

    fn score(&self, b: usize, m: usize) -> f64 {
        assert!(
            b < self.db.benchmarks.len(),
            "benchmark index out of bounds"
        );
        let (s, local) = self.locate(m);
        self.db.shards[s].scores[(b, local)]
    }

    fn machine_column(&self, m: usize) -> VecView<'_> {
        let (s, local) = self.locate(m);
        self.db.shards[s].scores.col_view(local)
    }

    fn benchmark_row_segments(&self, b: usize) -> Vec<RowSegment<'_>> {
        self.db.benchmark_row_segments(b)
    }

    fn gather(&self, benchmarks: &[usize], machines: &[usize]) -> Matrix {
        // The bulk gather already locates each column exactly once; the
        // cursor would add nothing.
        self.db.gather(benchmarks, machines)
    }

    fn n_shards(&self) -> usize {
        self.db.shards.len()
    }

    fn reader(&self) -> DbReader<'_> {
        self.db.reader()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate, DatasetConfig};

    fn dense() -> PerfDatabase {
        generate(&DatasetConfig::default()).unwrap()
    }

    #[test]
    fn shard_widths_are_balanced_and_cover_all_machines() {
        let db = dense();
        for n_shards in [1, 2, 3, 4, 5, 8, 116, 117] {
            let sharded = ShardedPerfDatabase::from_dense(&db, n_shards).unwrap();
            assert_eq!(sharded.n_shards(), n_shards);
            let widths: Vec<usize> = sharded.shards().iter().map(Shard::width).collect();
            assert_eq!(widths.iter().sum::<usize>(), 117);
            let min = *widths.iter().min().unwrap();
            let max = *widths.iter().max().unwrap();
            assert!(max - min <= 1, "{n_shards} shards: widths {widths:?}");
            // Contiguous, in order.
            let mut next = 0;
            for shard in sharded.shards() {
                assert_eq!(shard.start(), next);
                next = shard.machine_range().end;
            }
            assert_eq!(next, 117);
        }
    }

    #[test]
    fn shard_of_agrees_with_ranges() {
        let db = dense();
        for n_shards in [1, 2, 5, 39, 117] {
            let sharded = ShardedPerfDatabase::from_dense(&db, n_shards).unwrap();
            for m in 0..117 {
                let s = sharded.shard_of(m);
                assert!(
                    sharded.shard(s).machine_range().contains(&m),
                    "{n_shards} shards, machine {m} -> shard {s}"
                );
            }
        }
    }

    #[test]
    fn round_trips_through_dense_bitwise() {
        let db = dense();
        for n_shards in [1, 4, 7, 117] {
            let sharded = ShardedPerfDatabase::from_dense(&db, n_shards).unwrap();
            assert_eq!(sharded.to_dense(), db, "{n_shards} shards");
        }
    }

    #[test]
    fn shard_machines_slice_matches_metadata() {
        let db = dense();
        let sharded = ShardedPerfDatabase::from_dense(&db, 5).unwrap();
        for s in 0..sharded.n_shards() {
            let range = sharded.shard(s).machine_range();
            assert_eq!(sharded.shard_machines(s), &db.machines()[range]);
        }
    }

    #[test]
    fn rejects_invalid_shard_counts() {
        let db = dense();
        assert!(matches!(
            ShardedPerfDatabase::from_dense(&db, 0),
            Err(DatasetError::InvalidConfig {
                name: "n_shards",
                ..
            })
        ));
        assert!(matches!(
            ShardedPerfDatabase::from_dense(&db, 118),
            Err(DatasetError::InvalidConfig {
                name: "n_shards",
                ..
            })
        ));
    }

    #[test]
    fn reader_cache_never_changes_values() {
        let db = dense();
        let sharded = ShardedPerfDatabase::from_dense(&db, 4).unwrap();
        let reader = sharded.reader();
        // Alternate between distant columns so the cache keeps missing,
        // then re-hitting; every value must still match the dense backing.
        for &m in &[0usize, 116, 1, 115, 58, 59, 58, 0] {
            for b in 0..db.n_benchmarks() {
                assert_eq!(
                    reader.score(b, m).to_bits(),
                    db.score(b, m).to_bits(),
                    "b={b} m={m}"
                );
            }
        }
    }
}

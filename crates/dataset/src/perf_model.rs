//! The analytical CPI-stack performance model.
//!
//! This model plays the role of "running the benchmark on the machine":
//! given a machine's [`MicroArch`] and a workload's
//! [`WorkloadCharacteristics`], it produces an execution time, and from it
//! the SPEC-style speed ratio against the modeled SUN Ultra5 296 MHz
//! reference (the reference SPEC CPU2006 uses).
//!
//! The model is a classical interval/CPI-stack decomposition:
//!
//! ```text
//! CPI = CPI_core + CPI_fp + CPI_branch + CPI_memory
//! time = instructions × CPI / frequency
//! ```
//!
//! * **Core**: `1 / min(workload ILP, width × efficiency)`, where in-order
//!   and EPIC machines earn extra efficiency on regular code
//!   (`static_bonus × regularity`) — this is what lets Itanium Montecito
//!   win the regular `namd`/`hmmer` outliers as in the paper.
//! * **FP**: `fp_fraction × fp_cost` extra cycles.
//! * **Branch**: `branch_fraction × mispredict_rate × predictor_scale ×
//!   penalty`.
//! * **Memory**: a two/three-level hierarchy with a power-law reuse curve
//!   plus a streaming component that never caches; misses overlap according
//!   to the workload's memory-level parallelism and the machine's
//!   capability to exploit it, and prefetchers hide part of the streaming
//!   latency. Bandwidth saturation inflates effective latency. These
//!   non-linear terms (cache cliffs, bandwidth walls) are exactly why a
//!   non-linear model (MLPᵀ) outperforms linear regression (NNᵀ) in the
//!   paper — the substrate preserves that structure.

use crate::characteristics::WorkloadCharacteristics;
use crate::microarch::MicroArch;

/// Decomposed CPI for inspection and ablation studies.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpiStack {
    /// Base (core-limited) CPI.
    pub core: f64,
    /// Floating-point overhead CPI.
    pub fp: f64,
    /// Branch misprediction CPI.
    pub branch: f64,
    /// Memory hierarchy CPI.
    pub memory: f64,
}

impl CpiStack {
    /// Total CPI.
    pub fn total(&self) -> f64 {
        self.core + self.fp + self.branch + self.memory
    }
}

/// Fraction of memory accesses that are capacity traffic: accesses beyond
/// the register/stack-like hot set that an L1 captures regardless of
/// working-set size. Only this slice walks the reuse curve below.
const CAPACITY_TRAFFIC: f64 = 0.05;

/// Miss rate of a cache of `cache_kib` for the workload's capacity traffic:
/// exponential decay in the cache-to-working-set ratio, producing the
/// classic cache cliff once the working set fits.
fn reuse_miss_rate(w: &WorkloadCharacteristics, cache_kib: f64) -> f64 {
    if cache_kib <= 0.0 {
        return 1.0;
    }
    let ws_kib = w.working_set_mib * 1024.0;
    (-8.0 * w.locality_alpha * cache_kib / ws_kib).exp()
}

/// Computes the decomposed CPI stack of `w` on `m`.
pub fn cpi_stack(m: &MicroArch, w: &WorkloadCharacteristics) -> CpiStack {
    // --- Core component ---
    let eff = (m.pipeline_eff + m.static_bonus * w.regularity).min(1.0);
    let sustained_ipc = (m.width * eff).min(w.ilp).max(0.25);
    let core = 1.0 / sustained_ipc;

    // --- Floating-point component ---
    let fp = w.fp_fraction * m.fp_cost;

    // --- Branch component ---
    let mispredicts = w.mispredict_rate * m.branch_pred_scale;
    let branch = w.branch_fraction * mispredicts.min(1.0) * m.branch_penalty;

    // --- Memory component ---
    // Reusable accesses walk the hierarchy with power-law miss curves;
    // streaming accesses always miss to memory.
    let reuse = 1.0 - w.stream_fraction;
    let mr_l1 = reuse_miss_rate(w, m.l1d_kib);
    let mr_l2 = (reuse_miss_rate(w, m.l2_kib + m.l1d_kib)).min(mr_l1);
    let mr_l3 = if m.l3_kib > 0.0 {
        (reuse_miss_rate(w, m.l3_kib + m.l2_kib)).min(mr_l2)
    } else {
        mr_l2
    };

    // Memory latency in cycles, inflated when the workload's bandwidth
    // demand approaches the machine's sustainable bandwidth.
    let bw_pressure = (w.bandwidth_demand / m.mem_bw_gbs).min(2.0);
    let mem_cycles = m.mem_lat_ns * m.freq_ghz * (1.0 + bw_pressure);

    // Prefetchers hide streaming latency; OoO machines overlap misses up to
    // the workload's MLP.
    let effective_mlp = 1.0 + (w.mlp - 1.0) * m.mlp_capability;
    let stream_cycles = mem_cycles * (1.0 - m.prefetch_eff) / effective_mlp;
    let reuse_hierarchy_cycles = (mr_l1 - mr_l2).max(0.0) * m.l2_lat_cycles
        + (mr_l2 - mr_l3).max(0.0) * m.l3_lat_cycles
        + mr_l3 * mem_cycles / effective_mlp;

    let memory = w.mem_fraction
        * (reuse * CAPACITY_TRAFFIC * reuse_hierarchy_cycles + w.stream_fraction * stream_cycles);

    CpiStack {
        core,
        fp,
        branch,
        memory,
    }
}

/// Software-pipelining factor: the fraction of dynamic work *kept* after
/// the compiler exploits regularity. Only high-ILP regular code benefits
/// (there must be parallelism to schedule statically), which is what lets
/// EPIC machines win `namd`/`hmmer`-class outliers.
pub fn compiler_factor(m: &MicroArch, w: &WorkloadCharacteristics) -> f64 {
    let ilp_headroom = ((w.ilp - 4.0) / 2.0).clamp(0.0, 1.0);
    1.0 - m.compiler_gain * w.regularity * ilp_headroom
}

/// Execution time of `w` on `m` in seconds.
pub fn execution_time_s(m: &MicroArch, w: &WorkloadCharacteristics) -> f64 {
    let cpi = cpi_stack(m, w).total();
    w.instr_e9 * compiler_factor(m, w) * cpi / m.freq_ghz
}

/// SPEC-style speed ratio of `w` on `m`: reference time / machine time,
/// with the modeled Ultra5 as the reference machine.
pub fn spec_ratio(m: &MicroArch, w: &WorkloadCharacteristics) -> f64 {
    let reference = MicroArch::ultra5_reference();
    execution_time_s(&reference, w) / execution_time_s(m, w)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmark::spec_cpu2006;
    use crate::catalog::nickname_specs;

    fn workload(name: &str) -> WorkloadCharacteristics {
        spec_cpu2006()
            .into_iter()
            .find(|b| b.name == name)
            .unwrap()
            .characteristics
    }

    fn machine(nickname: &str) -> MicroArch {
        nickname_specs()
            .into_iter()
            .find(|s| s.nickname == nickname)
            .unwrap()
            .template
    }

    /// Diagnostic: dump per-nickname ratios for the outlier workloads.
    /// Run with `cargo test -p datatrans-dataset dump_outlier -- --ignored --nocapture`.
    #[test]
    #[ignore = "diagnostic output, not an assertion"]
    fn dump_outlier_rankings() {
        for name in [
            "namd",
            "hmmer",
            "libquantum",
            "cactusADM",
            "gamess",
            "perlbench",
        ] {
            let w = workload(name);
            let mut rows: Vec<(String, f64)> = nickname_specs()
                .into_iter()
                .map(|s| (s.nickname.to_owned(), spec_ratio(&s.template, &w)))
                .collect();
            rows.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
            println!("--- {name} ---");
            for (nick, r) in rows.iter().take(6) {
                println!("  {nick:<14} {r:7.1}");
            }
        }
    }

    #[test]
    fn cpi_components_positive() {
        for b in spec_cpu2006() {
            for s in nickname_specs() {
                let stack = cpi_stack(&s.template, &b.characteristics);
                assert!(stack.core > 0.0, "{}/{}", b.name, s.nickname);
                assert!(stack.fp >= 0.0);
                assert!(stack.branch >= 0.0);
                assert!(stack.memory >= 0.0);
                assert!(stack.total().is_finite());
            }
        }
    }

    #[test]
    fn bigger_cache_never_hurts() {
        let w = workload("mcf");
        let mut small = machine("Conroe");
        let mut big = small;
        small.l2_kib = 1024.0;
        big.l2_kib = 8192.0;
        assert!(
            execution_time_s(&big, &w) < execution_time_s(&small, &w),
            "larger L2 must speed up cache-sensitive mcf"
        );
    }

    #[test]
    fn higher_frequency_speeds_up_compute_bound() {
        let w = workload("gamess");
        let base = machine("Wolfdale");
        let mut fast = base;
        fast.freq_ghz *= 1.2;
        assert!(execution_time_s(&fast, &w) < execution_time_s(&base, &w));
    }

    #[test]
    fn all_ratios_above_one_for_modern_machines() {
        // Every catalog machine is faster than the 1998 Ultra5 reference on
        // every benchmark.
        for b in spec_cpu2006() {
            for s in nickname_specs() {
                let r = spec_ratio(&s.template, &b.characteristics);
                assert!(
                    r > 1.0 && r < 500.0,
                    "{} on {}: ratio {r}",
                    b.name,
                    s.nickname
                );
            }
        }
    }

    #[test]
    fn gainestown_wins_streaming_outliers() {
        // The paper: libquantum/cactusADM "yield the highest performance on
        // an Intel Xeon Gainestown system".
        for name in ["libquantum", "cactusADM", "lbm", "leslie3d"] {
            let w = workload(name);
            let gainestown = spec_ratio(&machine("Gainestown"), &w);
            for s in nickname_specs() {
                if s.nickname == "Gainestown" {
                    continue;
                }
                let r = spec_ratio(&s.template, &w);
                assert!(
                    gainestown > r,
                    "{name}: Gainestown {gainestown:.1} should beat {} {r:.1}",
                    s.nickname
                );
            }
        }
    }

    #[test]
    fn montecito_wins_regular_compute_outliers() {
        // The paper: namd and hmmer "yield the highest performance on Intel
        // Montecito processor systems".
        for name in ["namd", "hmmer"] {
            let w = workload(name);
            let montecito = spec_ratio(&machine("Montecito"), &w);
            for s in nickname_specs() {
                if s.nickname == "Montecito" {
                    continue;
                }
                let r = spec_ratio(&s.template, &w);
                assert!(
                    montecito > r,
                    "{name}: Montecito {montecito:.1} should beat {} {r:.1}",
                    s.nickname
                );
            }
        }
    }

    #[test]
    fn streaming_outliers_have_above_average_ratios() {
        // libquantum-class workloads score higher than the suite average on
        // modern machines (as in real SPEC CPU2006 data).
        let suite = spec_cpu2006();
        let m = machine("Gainestown");
        let avg: f64 = suite
            .iter()
            .map(|b| spec_ratio(&m, &b.characteristics))
            .sum::<f64>()
            / suite.len() as f64;
        let libq = spec_ratio(&m, &workload("libquantum"));
        assert!(libq > 1.5 * avg, "libquantum {libq:.1} vs avg {avg:.1}");
    }

    #[test]
    fn cheetah_is_slowest_on_average() {
        let suite = spec_cpu2006();
        let mean_ratio = |mic: &MicroArch| {
            suite
                .iter()
                .map(|b| spec_ratio(mic, &b.characteristics))
                .sum::<f64>()
                / suite.len() as f64
        };
        let cheetah = mean_ratio(&machine("Cheetah+"));
        for s in nickname_specs() {
            if s.nickname == "Cheetah+" {
                continue;
            }
            assert!(
                mean_ratio(&s.template) > cheetah,
                "{} should beat the 2002 UltraSPARC III",
                s.nickname
            );
        }
    }
}

//! Machine-restriction queries and the shard-pruning planner.
//!
//! A ranking request rarely wants the whole catalog: it asks for *the
//! Xeons*, *machines released 2008–2009*, *machines scoring at least 15 on
//! gcc*, or an explicit candidate subset. [`MachineFilter`] expresses such
//! a restriction as a conjunction of clauses, and
//! [`crate::view::DatabaseView::plan_machines`] resolves it to a
//! [`QueryPlan`]: the matching machine indices in ascending catalog order
//! plus an account of which storage shards were scanned to find them.
//!
//! The dense backing can only scan every machine. The sharded backing
//! keeps per-shard [`ShardStats`] — the family set, release-year range,
//! and per-benchmark score range of each shard, computed once at
//! construction — and skips every shard whose statistics prove it cannot
//! contain a match. Pruning is **conservative**: a shard is skipped only
//! when *no* machine in it can satisfy the filter, so the pruned plan's
//! machine list is always identical to the full scan's (the planner unit
//! tests and `tests/query_engine.rs` pin this, on seeded random catalogs).

use datatrans_linalg::Matrix;

use crate::machine::{Machine, ProcessorFamily};
use crate::view::DatabaseView;
use crate::DatasetError;

/// A conjunction of restrictions on the machine set.
///
/// An empty filter ([`MachineFilter::all`]) matches every machine. Each
/// clause narrows the candidate set; a machine matches the filter when it
/// satisfies **every** present clause.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MachineFilter {
    /// Keep only machines of this processor family.
    pub family: Option<ProcessorFamily>,
    /// Keep only machines released in `year_min..=year_max` (either bound
    /// may be open).
    pub year_min: Option<u16>,
    /// See [`MachineFilter::year_min`].
    pub year_max: Option<u16>,
    /// Keep only machines whose stored score on benchmark row `.0` is at
    /// least `.1` — the bucket-style aggregate restriction that per-shard
    /// score ranges can prune.
    pub min_score: Option<(usize, f64)>,
    /// Keep only machines from this explicit index set (order and
    /// duplicates are irrelevant; the plan always lists matches in
    /// ascending catalog order).
    pub subset: Option<Vec<usize>>,
}

impl MachineFilter {
    /// The unrestricted filter: every machine matches.
    pub fn all() -> Self {
        MachineFilter::default()
    }

    /// Restrict to one processor family.
    pub fn family(family: ProcessorFamily) -> Self {
        MachineFilter {
            family: Some(family),
            ..MachineFilter::default()
        }
    }

    /// Restrict to release years `min..=max`.
    pub fn years(min: u16, max: u16) -> Self {
        MachineFilter {
            year_min: Some(min),
            year_max: Some(max),
            ..MachineFilter::default()
        }
    }

    /// Adds a family clause.
    pub fn with_family(mut self, family: ProcessorFamily) -> Self {
        self.family = Some(family);
        self
    }

    /// Adds release-year bounds (inclusive).
    pub fn with_years(mut self, min: u16, max: u16) -> Self {
        self.year_min = Some(min);
        self.year_max = Some(max);
        self
    }

    /// Adds a minimum-score clause on benchmark row `benchmark`.
    pub fn with_min_score(mut self, benchmark: usize, threshold: f64) -> Self {
        self.min_score = Some((benchmark, threshold));
        self
    }

    /// Adds an explicit candidate-subset clause.
    pub fn with_subset(mut self, subset: Vec<usize>) -> Self {
        self.subset = Some(subset);
        self
    }

    /// True when the filter has no clauses (matches everything).
    pub fn is_all(&self) -> bool {
        *self == MachineFilter::default()
    }

    /// Whether machine `m` of `db` satisfies every clause.
    ///
    /// # Panics
    ///
    /// Panics if `m` is out of bounds, or if a `min_score` clause names a
    /// benchmark row out of bounds.
    pub fn matches<D: DatabaseView + ?Sized>(&self, db: &D, m: usize) -> bool {
        let machine = &db.machines()[m];
        self.matches_metadata(machine)
            && self
                .min_score
                .is_none_or(|(b, threshold)| db.score(b, m) >= threshold)
            && self
                .subset
                .as_ref()
                .is_none_or(|subset| subset.contains(&m))
    }

    /// The metadata clauses only (family + years) — the part a
    /// [`ShardStats`] summary can reason about without touching scores.
    fn matches_metadata(&self, machine: &Machine) -> bool {
        self.family.is_none_or(|f| machine.family == f)
            && self.year_min.is_none_or(|min| machine.year >= min)
            && self.year_max.is_none_or(|max| machine.year <= max)
    }

    /// Validates index clauses against a database's dimensions, so that
    /// [`MachineFilter::matches`] and [`scan_machines`] cannot panic on a
    /// filter that passed.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::IndexOutOfBounds`] naming the first
    /// offending clause: a `min_score` benchmark row at or past
    /// `n_benchmarks`, or a `subset` machine at or past `n_machines`.
    pub fn validate<D: DatabaseView + ?Sized>(&self, db: &D) -> crate::Result<()> {
        if let Some((b, _)) = self.min_score {
            if b >= db.n_benchmarks() {
                return Err(DatasetError::IndexOutOfBounds {
                    what: "min_score benchmark",
                    index: b,
                    bound: db.n_benchmarks(),
                });
            }
        }
        if let Some(subset) = &self.subset {
            let bound = db.n_machines();
            if let Some(&m) = subset.iter().find(|&&m| m >= bound) {
                return Err(DatasetError::IndexOutOfBounds {
                    what: "subset machine",
                    index: m,
                    bound,
                });
            }
        }
        Ok(())
    }

    /// Validates index clauses against a database's dimensions.
    ///
    /// Returns the first offending clause as `(clause name, index)`, or
    /// `None` when every referenced index is in bounds. [`MachineFilter::validate`]
    /// is the typed-error form of the same check.
    pub fn invalid_index<D: DatabaseView + ?Sized>(&self, db: &D) -> Option<(&'static str, usize)> {
        match self.validate(db) {
            Err(DatasetError::IndexOutOfBounds { what, index, .. }) => Some((what, index)),
            _ => None,
        }
    }
}

/// A filter prepared for repeated evaluation during a scan: the subset
/// clause is sorted once so membership is a binary search, not a linear
/// probe per machine.
pub(crate) struct PreparedFilter<'a> {
    filter: &'a MachineFilter,
    sorted_subset: Option<Vec<usize>>,
}

impl<'a> PreparedFilter<'a> {
    pub(crate) fn new(filter: &'a MachineFilter) -> Self {
        let sorted_subset = filter.subset.as_ref().map(|s| {
            let mut v = s.clone();
            v.sort_unstable();
            v.dedup();
            v
        });
        PreparedFilter {
            filter,
            sorted_subset,
        }
    }

    /// Same predicate as [`MachineFilter::matches`]. Clauses run cheapest
    /// first — metadata, then subset membership, then the stored-score
    /// read — so a narrow subset short-circuits the score lookups during
    /// a shard scan (a pure conjunction: order cannot change the result).
    pub(crate) fn matches<D: DatabaseView + ?Sized>(&self, db: &D, m: usize) -> bool {
        self.filter.matches_metadata(&db.machines()[m])
            && self
                .sorted_subset
                .as_ref()
                .is_none_or(|subset| subset.binary_search(&m).is_ok())
            && self
                .filter
                .min_score
                .is_none_or(|(b, threshold)| db.score(b, m) >= threshold)
    }

    /// Whether any subset member falls inside `range` (always true without
    /// a subset clause).
    pub(crate) fn subset_intersects(&self, range: std::ops::Range<usize>) -> bool {
        match &self.sorted_subset {
            None => true,
            Some(subset) => {
                let first_ge = subset.partition_point(|&m| m < range.start);
                subset.get(first_ge).is_some_and(|&m| m < range.end)
            }
        }
    }
}

/// Aggregate statistics of one storage shard, computed at construction
/// and consulted by the planner to skip shards that cannot match.
///
/// The statistics are summaries of *stored* data — they are never updated
/// incrementally and never feed back into stored values, so planning with
/// them can only change **which shards are scanned**, never what a scan
/// returns.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardStats {
    /// Distinct processor families present, sorted.
    families: Vec<ProcessorFamily>,
    /// Earliest release year in the shard.
    year_min: u16,
    /// Latest release year in the shard.
    year_max: u16,
    /// Per-benchmark minimum stored score (row order).
    score_min: Vec<f64>,
    /// Per-benchmark maximum stored score (row order).
    score_max: Vec<f64>,
}

impl ShardStats {
    /// Computes the statistics of one shard from its machine metadata
    /// slice and its `benchmarks × width` score block.
    ///
    /// # Panics
    ///
    /// Panics if `machines` is empty or its length differs from the score
    /// block's column count (a shard owns at least one machine column by
    /// construction).
    pub fn compute(machines: &[Machine], scores: &Matrix) -> Self {
        assert!(!machines.is_empty(), "a shard owns at least one machine");
        assert_eq!(machines.len(), scores.cols(), "metadata/score width");
        let mut families: Vec<ProcessorFamily> = machines.iter().map(|m| m.family).collect();
        families.sort_unstable();
        families.dedup();
        let year_min = machines.iter().map(|m| m.year).min().expect("non-empty");
        let year_max = machines.iter().map(|m| m.year).max().expect("non-empty");
        let mut score_min = Vec::with_capacity(scores.rows());
        let mut score_max = Vec::with_capacity(scores.rows());
        for b in 0..scores.rows() {
            let row = scores.row(b);
            score_min.push(row.iter().copied().fold(f64::INFINITY, f64::min));
            score_max.push(row.iter().copied().fold(f64::NEG_INFINITY, f64::max));
        }
        ShardStats {
            families,
            year_min,
            year_max,
            score_min,
            score_max,
        }
    }

    /// Folds one appended machine into the statistics in place: inserts
    /// its family (keeping the set sorted), widens the year range, and
    /// widens each benchmark's score range. `column` is the machine's
    /// score column in benchmark row order.
    ///
    /// After absorbing every appended machine the statistics are exactly
    /// [`ShardStats::compute`] of the grown shard — min/max over a union
    /// is the min/max of the per-part min/max — so ingest keeps the
    /// pruning planner's conservativeness intact without a recompute.
    ///
    /// # Panics
    ///
    /// Panics if `column` does not cover every benchmark row.
    pub fn absorb_machine(&mut self, machine: &Machine, column: &[f64]) {
        assert_eq!(column.len(), self.score_min.len(), "column/benchmark rows");
        if let Err(pos) = self.families.binary_search(&machine.family) {
            self.families.insert(pos, machine.family);
        }
        self.year_min = self.year_min.min(machine.year);
        self.year_max = self.year_max.max(machine.year);
        for (b, &score) in column.iter().enumerate() {
            self.score_min[b] = self.score_min[b].min(score);
            self.score_max[b] = self.score_max[b].max(score);
        }
    }

    /// The distinct processor families in the shard, sorted.
    pub fn families(&self) -> &[ProcessorFamily] {
        &self.families
    }

    /// `(earliest, latest)` release year in the shard.
    pub fn year_range(&self) -> (u16, u16) {
        (self.year_min, self.year_max)
    }

    /// `(min, max)` stored score of benchmark row `b` across the shard's
    /// machines.
    ///
    /// # Panics
    ///
    /// Panics if `b` is out of bounds.
    pub fn score_range(&self, b: usize) -> (f64, f64) {
        (self.score_min[b], self.score_max[b])
    }

    /// Whether any machine in the shard *could* satisfy the filter's
    /// family / year / score clauses.
    ///
    /// Conservative by construction: `false` is returned only when the
    /// shard provably contains no match (family absent, year ranges
    /// disjoint, or the shard's best score below the threshold), so
    /// pruning on this predicate never drops a matching machine. The
    /// subset clause is range-based and handled by the planner, not here.
    pub fn may_match(&self, filter: &MachineFilter) -> bool {
        filter
            .family
            .is_none_or(|f| self.families.binary_search(&f).is_ok())
            && filter.year_min.is_none_or(|min| self.year_max >= min)
            && filter.year_max.is_none_or(|max| self.year_min <= max)
            && filter
                .min_score
                .is_none_or(|(b, threshold)| self.score_max[b] >= threshold)
    }
}

/// The resolution of a [`MachineFilter`] against one backing: the matching
/// machine indices plus how much storage the planner had to touch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryPlan {
    /// Matching machine indices, ascending catalog order — identical for
    /// every backing and plan strategy.
    pub machines: Vec<usize>,
    /// Number of shards whose machines were examined.
    pub shards_scanned: usize,
    /// Number of shards skipped outright by statistics or subset range.
    pub shards_pruned: usize,
}

/// The full-scan planner every backing can fall back to: examine each
/// machine in catalog order.
///
/// # Panics
///
/// Panics if a `min_score` clause names an out-of-range benchmark row or a
/// subset clause an out-of-range machine (validate with
/// [`MachineFilter::invalid_index`] first where that matters).
pub fn scan_machines<D: DatabaseView + ?Sized>(db: &D, filter: &MachineFilter) -> Vec<usize> {
    let prepared = PreparedFilter::new(filter);
    (0..db.n_machines())
        .filter(|&m| prepared.matches(db, m))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate, DatasetConfig};

    #[test]
    fn filter_clauses_conjoin() {
        let db = generate(&DatasetConfig::default()).unwrap();
        let xeons = db.machines_in_family(ProcessorFamily::Xeon);
        let filter = MachineFilter::family(ProcessorFamily::Xeon).with_years(2008, 2009);
        for m in 0..db.n_machines() {
            let expected = xeons.contains(&m) && (2008..=2009).contains(&db.machines()[m].year);
            assert_eq!(filter.matches(&db, m), expected, "machine {m}");
        }
    }

    #[test]
    fn all_filter_matches_everything() {
        let db = generate(&DatasetConfig::default()).unwrap();
        assert!(MachineFilter::all().is_all());
        assert_eq!(
            scan_machines(&db, &MachineFilter::all()),
            (0..db.n_machines()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn min_score_clause_reads_stored_scores() {
        let db = generate(&DatasetConfig::default()).unwrap();
        let threshold = db.score(3, 58);
        let filter = MachineFilter::all().with_min_score(3, threshold);
        let matches = scan_machines(&db, &filter);
        assert!(matches.contains(&58));
        for &m in &matches {
            assert!(db.score(3, m) >= threshold);
        }
        for m in (0..db.n_machines()).filter(|m| !matches.contains(m)) {
            assert!(db.score(3, m) < threshold);
        }
    }

    #[test]
    fn subset_clause_is_order_and_duplicate_insensitive() {
        let db = generate(&DatasetConfig::default()).unwrap();
        let filter = MachineFilter::all().with_subset(vec![90, 5, 5, 41, 90]);
        assert_eq!(scan_machines(&db, &filter), vec![5, 41, 90]);
    }

    #[test]
    fn invalid_index_reports_offending_clause() {
        let db = generate(&DatasetConfig::default()).unwrap();
        assert_eq!(MachineFilter::all().invalid_index(&db), None);
        assert_eq!(
            MachineFilter::all()
                .with_min_score(99, 1.0)
                .invalid_index(&db),
            Some(("min_score benchmark", 99))
        );
        assert_eq!(
            MachineFilter::all()
                .with_subset(vec![0, 400])
                .invalid_index(&db),
            Some(("subset machine", 400))
        );
    }

    #[test]
    fn validate_accepts_in_bounds_clauses() {
        let db = generate(&DatasetConfig::default()).unwrap();
        assert!(MachineFilter::all().validate(&db).is_ok());
        assert!(MachineFilter::family(ProcessorFamily::Xeon)
            .with_years(2004, 2010)
            .with_min_score(28, 1.0)
            .with_subset(vec![0, 116])
            .validate(&db)
            .is_ok());
    }

    #[test]
    fn validate_rejects_out_of_range_min_score_row() {
        let db = generate(&DatasetConfig::default()).unwrap();
        assert_eq!(
            MachineFilter::all().with_min_score(29, 1.0).validate(&db),
            Err(DatasetError::IndexOutOfBounds {
                what: "min_score benchmark",
                index: 29,
                bound: 29,
            })
        );
    }

    #[test]
    fn validate_rejects_out_of_range_subset_machine() {
        let db = generate(&DatasetConfig::default()).unwrap();
        assert_eq!(
            MachineFilter::all()
                .with_subset(vec![3, 117, 500])
                .validate(&db),
            Err(DatasetError::IndexOutOfBounds {
                what: "subset machine",
                index: 117,
                bound: 117,
            })
        );
    }

    #[test]
    fn subset_intersects_ranges() {
        let filter = MachineFilter::all().with_subset(vec![3, 17, 40]);
        let prepared = PreparedFilter::new(&filter);
        assert!(prepared.subset_intersects(0..4));
        assert!(prepared.subset_intersects(17..18));
        assert!(!prepared.subset_intersects(4..17));
        assert!(!prepared.subset_intersects(41..100));
        let unrestricted = MachineFilter::all();
        let open = PreparedFilter::new(&unrestricted);
        assert!(open.subset_intersects(5..6));
    }

    #[test]
    fn shard_stats_summarize_block() {
        let db = generate(&DatasetConfig::default()).unwrap();
        let machines = &db.machines()[0..10];
        let block = db.score_matrix().select(
            &(0..db.n_benchmarks()).collect::<Vec<_>>(),
            &(0..10).collect::<Vec<_>>(),
        );
        let stats = ShardStats::compute(machines, &block);
        let mut families: Vec<ProcessorFamily> = machines.iter().map(|m| m.family).collect();
        families.sort_unstable();
        families.dedup();
        assert_eq!(stats.families(), families.as_slice());
        let years: Vec<u16> = machines.iter().map(|m| m.year).collect();
        assert_eq!(
            stats.year_range(),
            (*years.iter().min().unwrap(), *years.iter().max().unwrap())
        );
        let (lo, hi) = stats.score_range(4);
        for m in 0..10 {
            let s = db.score(4, m);
            assert!(lo <= s && s <= hi);
        }
        // may_match is conservative: a family actually present must match.
        assert!(stats.may_match(&MachineFilter::family(machines[0].family)));
        assert!(stats.may_match(&MachineFilter::all()));
        assert!(!stats.may_match(&MachineFilter::all().with_years(1980, 1990)));
        assert!(!stats.may_match(&MachineFilter::all().with_min_score(4, hi * 2.0)));
    }
}

//! The Table 1 machine catalog: 17 processor families, 39 CPU nicknames,
//! 3 machines per nickname — 117 machines in total.
//!
//! Per the paper, "different CPU nicknames reflect differences in
//! microarchitecture, chip technology, cache sizes, bus speed, etc." and
//! each nickname contributes three concrete machines. We reproduce this by
//! defining one [`MicroArch`] template per nickname and deriving the three
//! machines with deterministic per-instance variation (frequency grade,
//! cache configuration, memory speed) — the way real SPEC submissions of
//! the same CPU differ across system vendors.

use datatrans_rng::rngs::StdRng;
use datatrans_rng::{Rng, SeedableRng};

use crate::machine::{Machine, ProcessorFamily};
use crate::microarch::MicroArch;

/// One nickname row of Table 1: the microarchitecture template shared by
/// its three machines.
#[derive(Debug, Clone)]
pub struct NicknameSpec {
    /// Processor family the nickname belongs to.
    pub family: ProcessorFamily,
    /// CPU nickname, e.g. `"Gainestown"`.
    pub nickname: &'static str,
    /// System release year used for the temporal experiments.
    pub year: u16,
    /// Microarchitecture template.
    pub template: MicroArch,
}

#[allow(clippy::too_many_arguments)]
fn spec(
    family: ProcessorFamily,
    nickname: &'static str,
    year: u16,
    freq_ghz: f64,
    width: f64,
    pipeline_eff: f64,
    static_bonus: f64,
    l1d_kib: f64,
    l2_kib: f64,
    l3_kib: f64,
    mem_lat_ns: f64,
    mem_bw_gbs: f64,
    branch_penalty: f64,
    branch_pred_scale: f64,
    fp_cost: f64,
    prefetch_eff: f64,
    mlp_capability: f64,
    compiler_gain: f64,
) -> NicknameSpec {
    NicknameSpec {
        family,
        nickname,
        year,
        template: MicroArch {
            freq_ghz,
            width,
            pipeline_eff,
            static_bonus,
            l1d_kib,
            l2_kib,
            l3_kib,
            l2_lat_cycles: 12.0,
            l3_lat_cycles: 25.0,
            mem_lat_ns,
            mem_bw_gbs,
            branch_penalty,
            branch_pred_scale,
            fp_cost,
            prefetch_eff,
            mlp_capability,
            compiler_gain,
        },
    }
}

/// The 39 nickname templates of Table 1.
///
/// Values are realistic for each design's era: frequency, issue width,
/// cache hierarchy, memory latency/bandwidth, branch machinery, FPU
/// strength, prefetching, and memory-level-parallelism capability.
#[rustfmt::skip] // keep the one-row-per-entry data table aligned
pub fn nickname_specs() -> Vec<NicknameSpec> {
    use ProcessorFamily as F;
    vec![
        // ----- AMD Opteron (K10): 3-wide OoO, integrated MC, L3 -----
        spec(F::OpteronK10, "Barcelona", 2007, 2.3, 3.0, 0.74, 0.05, 64.0, 512.0, 2048.0, 60.0, 10.5, 12.0, 0.90, 0.60, 0.60, 0.55, 0.05),
        spec(F::OpteronK10, "Istanbul", 2009, 2.6, 3.0, 0.76, 0.05, 64.0, 512.0, 6144.0, 52.0, 12.8, 12.0, 0.85, 0.55, 0.70, 0.60, 0.05),
        spec(F::OpteronK10, "Shanghai", 2009, 2.7, 3.0, 0.75, 0.05, 64.0, 512.0, 6144.0, 55.0, 12.0, 12.0, 0.88, 0.55, 0.65, 0.58, 0.05),
        // ----- AMD Opteron (K8): 3-wide OoO, integrated MC, no L3 -----
        spec(F::OpteronK8, "Santa Rosa", 2006, 2.8, 3.0, 0.70, 0.05, 64.0, 1024.0, 0.0, 62.0, 8.0, 11.0, 1.00, 0.70, 0.50, 0.45, 0.05),
        spec(F::OpteronK8, "Troy", 2005, 2.6, 3.0, 0.68, 0.05, 64.0, 1024.0, 0.0, 68.0, 6.4, 11.0, 1.05, 0.75, 0.45, 0.42, 0.05),
        // ----- AMD Phenom: K10 desktop -----
        spec(F::Phenom, "Agena", 2008, 2.4, 3.0, 0.73, 0.05, 64.0, 512.0, 2048.0, 58.0, 10.0, 12.0, 0.92, 0.62, 0.60, 0.53, 0.05),
        spec(F::Phenom, "Deneb", 2009, 3.0, 3.0, 0.76, 0.05, 64.0, 512.0, 6144.0, 52.0, 12.5, 12.0, 0.85, 0.55, 0.70, 0.58, 0.05),
        // ----- AMD Turion: mobile K8 -----
        spec(F::Turion, "Trinidad", 2006, 2.0, 3.0, 0.65, 0.05, 64.0, 512.0, 0.0, 75.0, 5.0, 11.0, 1.10, 0.80, 0.40, 0.40, 0.05),
        // ----- IBM POWER5: wide OoO, big off-chip L3, deep memory -----
        spec(F::Power5, "POWER5+", 2005, 1.9, 4.0, 0.78, 0.10, 32.0, 1920.0, 18432.0, 90.0, 12.0, 13.0, 0.80, 0.35, 0.55, 0.55, 0.05),
        // ----- IBM POWER6: very high clock, in-order, huge caches -----
        spec(F::Power6, "POWER6", 2008, 4.7, 4.0, 0.45, 0.15, 64.0, 4096.0, 32768.0, 100.0, 16.0, 15.0, 0.90, 0.60, 0.65, 0.50, 0.05),
        // ----- Intel Core 2: 4-wide OoO, shared L2, FSB memory -----
        spec(F::Core2, "Allendale", 2007, 2.2, 4.0, 0.78, 0.06, 32.0, 2048.0, 0.0, 70.0, 8.5, 13.0, 0.75, 0.50, 0.70, 0.60, 0.05),
        spec(F::Core2, "Conroe", 2006, 2.4, 4.0, 0.78, 0.06, 32.0, 4096.0, 0.0, 68.0, 8.5, 13.0, 0.75, 0.50, 0.70, 0.60, 0.05),
        spec(F::Core2, "Kentsfield", 2007, 2.66, 4.0, 0.78, 0.06, 32.0, 4096.0, 0.0, 70.0, 8.5, 13.0, 0.75, 0.50, 0.70, 0.60, 0.05),
        spec(F::Core2, "Merom-2M", 2007, 2.0, 4.0, 0.77, 0.06, 32.0, 2048.0, 0.0, 78.0, 5.3, 13.0, 0.78, 0.52, 0.65, 0.58, 0.05),
        spec(F::Core2, "Penryn-3M", 2008, 2.4, 4.0, 0.82, 0.06, 32.0, 3072.0, 0.0, 72.0, 6.4, 13.0, 0.72, 0.45, 0.73, 0.62, 0.05),
        spec(F::Core2, "Wolfdale", 2008, 3.0, 4.0, 0.82, 0.06, 32.0, 6144.0, 0.0, 62.0, 10.6, 13.0, 0.72, 0.45, 0.73, 0.62, 0.05),
        spec(F::Core2, "Yorkfield", 2008, 2.83, 4.0, 0.82, 0.06, 32.0, 6144.0, 0.0, 64.0, 10.6, 13.0, 0.72, 0.45, 0.73, 0.62, 0.05),
        // ----- Intel Core Duo: Yonah, mobile 3-wide -----
        spec(F::CoreDuo, "Yonah", 2006, 2.0, 3.0, 0.70, 0.05, 32.0, 2048.0, 0.0, 75.0, 5.3, 12.0, 0.85, 0.60, 0.55, 0.50, 0.05),
        // ----- Intel Core i7: Nehalem desktop XE, integrated MC -----
        spec(F::CoreI7, "Bloomfield XE", 2008, 3.2, 4.0, 0.76, 0.06, 32.0, 256.0, 8192.0, 48.0, 22.0, 14.0, 0.65, 0.48, 0.70, 0.78, 0.05),
        // ----- Intel Itanium: Montecito, 6-wide EPIC, giant L3 -----
        spec(F::Itanium, "Montecito", 2006, 1.6, 6.0, 0.50, 0.55, 16.0, 256.0, 12288.0, 120.0, 8.5, 6.0, 0.70, 0.22, 0.45, 0.45, 0.72),
        // ----- Intel Pentium D: Presler, NetBurst -----
        spec(F::PentiumD, "Presler", 2006, 3.4, 3.0, 0.45, 0.03, 16.0, 2048.0, 0.0, 80.0, 6.4, 25.0, 1.15, 0.70, 0.60, 0.45, 0.05),
        // ----- Intel Pentium Dual-Core: cut-down Allendale -----
        spec(F::PentiumDualCore, "Allendale", 2007, 2.0, 4.0, 0.76, 0.06, 32.0, 1024.0, 0.0, 72.0, 6.4, 13.0, 0.78, 0.55, 0.65, 0.58, 0.05),
        // ----- Intel Pentium M: Dothan, mobile -----
        spec(F::PentiumM, "Dothan", 2004, 2.0, 3.0, 0.66, 0.05, 32.0, 2048.0, 0.0, 85.0, 3.2, 12.0, 0.90, 0.65, 0.45, 0.45, 0.05),
        // ----- Intel Xeon: spans NetBurst to Nehalem-EP -----
        spec(F::Xeon, "Bloomfield", 2009, 3.2, 4.0, 0.76, 0.06, 32.0, 256.0, 8192.0, 46.0, 22.0, 14.0, 0.65, 0.48, 0.70, 0.78, 0.05),
        spec(F::Xeon, "Clovertown", 2007, 2.66, 4.0, 0.78, 0.06, 32.0, 4096.0, 0.0, 75.0, 8.5, 13.0, 0.75, 0.50, 0.67, 0.58, 0.05),
        spec(F::Xeon, "Conroe", 2006, 2.4, 4.0, 0.78, 0.06, 32.0, 4096.0, 0.0, 70.0, 8.5, 13.0, 0.75, 0.50, 0.70, 0.60, 0.05),
        spec(F::Xeon, "Dunnington", 2008, 2.66, 4.0, 0.79, 0.06, 32.0, 3072.0, 16384.0, 85.0, 8.5, 13.0, 0.73, 0.48, 0.70, 0.60, 0.05),
        spec(F::Xeon, "Gainestown", 2009, 3.2, 4.0, 0.76, 0.06, 32.0, 256.0, 8192.0, 42.0, 26.0, 14.0, 0.65, 0.48, 0.72, 0.82, 0.05),
        spec(F::Xeon, "Harpertown", 2008, 3.0, 4.0, 0.82, 0.06, 32.0, 6144.0, 0.0, 70.0, 10.6, 13.0, 0.72, 0.45, 0.73, 0.62, 0.05),
        spec(F::Xeon, "Kentsfield", 2007, 2.66, 4.0, 0.78, 0.06, 32.0, 4096.0, 0.0, 72.0, 8.5, 13.0, 0.75, 0.50, 0.70, 0.60, 0.05),
        spec(F::Xeon, "Lynnfield", 2009, 2.93, 4.0, 0.76, 0.06, 32.0, 256.0, 8192.0, 50.0, 19.0, 14.0, 0.66, 0.48, 0.68, 0.76, 0.05),
        spec(F::Xeon, "Tigerton", 2007, 2.93, 4.0, 0.78, 0.06, 32.0, 4096.0, 0.0, 80.0, 8.5, 13.0, 0.75, 0.50, 0.67, 0.58, 0.05),
        spec(F::Xeon, "Tulsa", 2006, 3.4, 3.0, 0.44, 0.03, 16.0, 1024.0, 16384.0, 95.0, 6.4, 26.0, 1.15, 0.70, 0.57, 0.42, 0.05),
        spec(F::Xeon, "Wolfdale-DP", 2008, 3.33, 4.0, 0.82, 0.06, 32.0, 6144.0, 0.0, 65.0, 10.6, 13.0, 0.72, 0.45, 0.73, 0.62, 0.05),
        spec(F::Xeon, "Woodcrest", 2006, 3.0, 4.0, 0.78, 0.06, 32.0, 4096.0, 0.0, 70.0, 8.5, 13.0, 0.75, 0.50, 0.70, 0.60, 0.05),
        spec(F::Xeon, "Yorkfield", 2008, 2.83, 4.0, 0.82, 0.06, 32.0, 6144.0, 0.0, 66.0, 10.6, 13.0, 0.72, 0.45, 0.73, 0.62, 0.05),
        // ----- SPARC64 VI / VII: wide in-order-ish server SPARC -----
        spec(F::Sparc64Vi, "Olympus-C", 2007, 2.4, 4.0, 0.60, 0.18, 128.0, 6144.0, 0.0, 110.0, 8.0, 14.0, 0.95, 0.45, 0.50, 0.45, 0.05),
        spec(F::Sparc64Vii, "Jupiter", 2008, 2.52, 4.0, 0.63, 0.18, 128.0, 6144.0, 0.0, 100.0, 10.0, 14.0, 0.92, 0.42, 0.55, 0.48, 0.05),
        // ----- UltraSPARC III: Cheetah+, early 2000s -----
        spec(F::UltraSparcIii, "Cheetah+", 2002, 1.05, 4.0, 0.50, 0.10, 64.0, 8192.0, 0.0, 150.0, 2.4, 8.0, 1.25, 0.80, 0.30, 0.25, 0.05),
    ]
}

/// Number of machines instantiated per nickname (Table 1: three).
pub const MACHINES_PER_NICKNAME: usize = 3;

/// Instantiates the full 117-machine catalog.
///
/// Each nickname yields [`MACHINES_PER_NICKNAME`] machines whose frequency,
/// cache sizes and memory speed vary deterministically around the template
/// (seeded by `seed`), mimicking the spread of real SPEC submissions for
/// one CPU across system vendors and SKUs.
pub fn build_machines(seed: u64) -> Vec<Machine> {
    let specs = nickname_specs();
    let mut machines = Vec::with_capacity(specs.len() * MACHINES_PER_NICKNAME);
    for (si, s) in specs.iter().enumerate() {
        for instance in 0..MACHINES_PER_NICKNAME {
            // Each (nickname, instance) has its own deterministic stream.
            let mut rng = StdRng::seed_from_u64(
                seed ^ (si as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    ^ (instance as u64).wrapping_mul(0xD1B5_4A32_D192_ED03),
            );
            let mut micro = s.template;
            // The three submissions of a nickname differ in SKU *and*
            // platform, the way real SPEC submissions do: a high-clock
            // desktop bin on a modest board, a mid bin, and a lower bin on
            // a server board with a stronger memory subsystem. Clock and
            // memory grades are anti-correlated, so the best instance of a
            // nickname depends on the workload.
            let clock_grade = [1.10, 1.00, 0.88][instance];
            let bw_grade = [0.86, 1.00, 1.18][instance];
            let lat_grade = [1.08, 1.00, 0.90][instance];
            micro.freq_ghz *= clock_grade * (1.0 + rng.gen_range(-0.03..0.03));
            micro.mem_bw_gbs *= bw_grade * (1.0 + rng.gen_range(-0.05..0.05));
            micro.mem_lat_ns *= lat_grade * (1.0 + rng.gen_range(-0.05..0.05));
            machines.push(Machine {
                name: format!("{} #{}", s.nickname, instance + 1),
                family: s.family,
                nickname: s.nickname.to_owned(),
                year: s.year,
                micro,
            });
        }
    }
    machines
}

/// Instantiates a scale-test catalog of exactly `n` machines.
///
/// The 39 nickname templates are expanded in Table 1 order, each
/// contributing `n / 39` machines (the first `n % 39` nicknames one more),
/// so machines of one nickname — and therefore one processor family — stay
/// **contiguous in column order** exactly like the paper catalog. That
/// contiguity is what lets family folds and release-year eras map onto
/// column-range shards.
///
/// Per-instance variation follows the same three SKU grades as
/// [`build_machines`], cycling every three instances, with slightly wider
/// jitter so a 10k-machine catalog does not collapse onto 117 points.
/// Deterministic given `(seed, n)`.
pub fn build_scaled_machines(seed: u64, n: usize) -> Vec<Machine> {
    let specs = nickname_specs();
    let base = n / specs.len();
    let extra = n % specs.len();
    let mut machines = Vec::with_capacity(n);
    for (si, s) in specs.iter().enumerate() {
        let count = base + usize::from(si < extra);
        for instance in 0..count {
            // Each (nickname, instance) has its own deterministic stream,
            // disjoint from the Table 1 catalog's streams.
            let mut rng = StdRng::seed_from_u64(
                seed ^ 0x5CA1_ED00_0000_0000
                    ^ (si as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    ^ (instance as u64).wrapping_mul(0xD1B5_4A32_D192_ED03),
            );
            let mut micro = s.template;
            let clock_grade = [1.10, 1.00, 0.88][instance % 3];
            let bw_grade = [0.86, 1.00, 1.18][instance % 3];
            let lat_grade = [1.08, 1.00, 0.90][instance % 3];
            micro.freq_ghz *= clock_grade * (1.0 + rng.gen_range(-0.05..0.05));
            micro.mem_bw_gbs *= bw_grade * (1.0 + rng.gen_range(-0.08..0.08));
            micro.mem_lat_ns *= lat_grade * (1.0 + rng.gen_range(-0.08..0.08));
            micro.l2_kib *= 1.0 + rng.gen_range(-0.05..0.05);
            micro.prefetch_eff =
                (micro.prefetch_eff * (1.0 + rng.gen_range(-0.08..0.08))).clamp(0.0, 1.0);
            machines.push(Machine {
                name: format!("{} ·{}", s.nickname, instance + 1),
                family: s.family,
                nickname: s.nickname.to_owned(),
                year: s.year,
                micro,
            });
        }
    }
    machines
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn thirty_nine_nicknames() {
        assert_eq!(nickname_specs().len(), 39);
    }

    #[test]
    fn one_hundred_seventeen_machines() {
        assert_eq!(build_machines(42).len(), 117);
    }

    #[test]
    fn family_nickname_counts_match_table1() {
        let mut counts: BTreeMap<ProcessorFamily, usize> = BTreeMap::new();
        for s in nickname_specs() {
            *counts.entry(s.family).or_default() += 1;
        }
        assert_eq!(counts[&ProcessorFamily::OpteronK10], 3);
        assert_eq!(counts[&ProcessorFamily::OpteronK8], 2);
        assert_eq!(counts[&ProcessorFamily::Phenom], 2);
        assert_eq!(counts[&ProcessorFamily::Turion], 1);
        assert_eq!(counts[&ProcessorFamily::Power5], 1);
        assert_eq!(counts[&ProcessorFamily::Power6], 1);
        assert_eq!(counts[&ProcessorFamily::Core2], 7);
        assert_eq!(counts[&ProcessorFamily::CoreDuo], 1);
        assert_eq!(counts[&ProcessorFamily::CoreI7], 1);
        assert_eq!(counts[&ProcessorFamily::Itanium], 1);
        assert_eq!(counts[&ProcessorFamily::PentiumD], 1);
        assert_eq!(counts[&ProcessorFamily::PentiumDualCore], 1);
        assert_eq!(counts[&ProcessorFamily::PentiumM], 1);
        assert_eq!(counts[&ProcessorFamily::Xeon], 13);
        assert_eq!(counts[&ProcessorFamily::Sparc64Vi], 1);
        assert_eq!(counts[&ProcessorFamily::Sparc64Vii], 1);
        assert_eq!(counts[&ProcessorFamily::UltraSparcIii], 1);
        assert_eq!(counts.len(), 17);
    }

    #[test]
    fn all_templates_plausible() {
        for s in nickname_specs() {
            assert!(s.template.is_plausible(), "{} implausible", s.nickname);
        }
        for m in build_machines(7) {
            assert!(m.micro.is_plausible(), "{} implausible", m.name);
        }
    }

    #[test]
    fn machines_are_deterministic_per_seed() {
        assert_eq!(build_machines(1), build_machines(1));
        assert_ne!(build_machines(1), build_machines(2));
    }

    #[test]
    fn instances_of_a_nickname_differ() {
        let machines = build_machines(42);
        // First three machines share the Barcelona nickname.
        assert_eq!(machines[0].nickname, machines[1].nickname);
        assert_ne!(machines[0].micro, machines[1].micro);
        assert_ne!(machines[1].micro, machines[2].micro);
    }

    #[test]
    fn machine_names_unique() {
        let machines = build_machines(42);
        let names: std::collections::BTreeSet<&str> =
            machines.iter().map(|m| m.name.as_str()).collect();
        // "Allendale" appears in two families and "Conroe"/"Kentsfield"/
        // "Yorkfield" in both Core 2 and Xeon; names collide intentionally,
        // so uniqueness holds per (family, name).
        let full: std::collections::BTreeSet<String> = machines
            .iter()
            .map(|m| format!("{}/{}", m.family, m.name))
            .collect();
        assert_eq!(full.len(), 117);
        assert!(names.len() >= 39);
    }

    #[test]
    fn scaled_catalog_has_exact_count_and_contiguous_families() {
        for n in [39usize, 40, 117, 500, 1000] {
            let machines = build_scaled_machines(7, n);
            assert_eq!(machines.len(), n);
            // Families form contiguous runs: once a family ends it never
            // reappears (the property shard layouts rely on).
            let mut seen = std::collections::BTreeSet::new();
            let mut current = None;
            for m in &machines {
                if current != Some(m.family) {
                    assert!(
                        seen.insert(m.family),
                        "family {} reappears at n={n}",
                        m.family
                    );
                    current = Some(m.family);
                }
            }
        }
    }

    #[test]
    fn scaled_catalog_is_deterministic_and_plausible() {
        assert_eq!(build_scaled_machines(3, 200), build_scaled_machines(3, 200));
        assert_ne!(build_scaled_machines(3, 200), build_scaled_machines(4, 200));
        for m in build_scaled_machines(11, 1000) {
            assert!(m.micro.is_plausible(), "{} implausible", m.name);
        }
    }

    #[test]
    fn scaled_instances_of_a_nickname_differ() {
        let machines = build_scaled_machines(42, 390);
        // 390 = 39 × 10: ten instances per nickname, first ten share one.
        assert_eq!(machines[0].nickname, machines[9].nickname);
        for w in machines[..10].windows(2) {
            assert_ne!(w[0].micro, w[1].micro);
        }
    }

    #[test]
    fn years_span_2002_to_2009() {
        let machines = build_machines(42);
        let min = machines.iter().map(|m| m.year).min().unwrap();
        let max = machines.iter().map(|m| m.year).max().unwrap();
        assert_eq!(min, 2002);
        assert_eq!(max, 2009);
        // Enough 2009 targets and 2008 predictive machines for Tables 3-4.
        let n2009 = machines.iter().filter(|m| m.year == 2009).count();
        let n2008 = machines.iter().filter(|m| m.year == 2008).count();
        assert!(n2009 >= 12, "need enough 2009 targets, got {n2009}");
        assert!(
            n2008 >= 12,
            "need enough 2008 predictive machines, got {n2008}"
        );
    }
}

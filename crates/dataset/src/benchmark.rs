//! The 29 SPEC CPU2006 benchmarks and their latent workload profiles.
//!
//! Names and suite membership match SPEC CPU2006. The latent demand vectors
//! are synthetic but shaped to reproduce the behavioural structure the paper
//! relies on:
//!
//! * `libquantum`, `lbm`, `cactusADM`, `leslie3d` — streaming,
//!   bandwidth-hungry outliers (the paper's "higher-than-average SPEC
//!   scores", best on Intel Xeon Gainestown-class machines);
//! * `namd`, `hmmer` — highly regular compute-bound outliers
//!   ("lower-than-average SPEC scores", best on Intel Montecito-class
//!   machines);
//! * `mcf`, `omnetpp`, `xalancbmk` — pointer-chasing, latency-bound;
//! * the remainder fills the ordinary int/fp spectrum.

use crate::characteristics::WorkloadCharacteristics;

/// SPEC CPU2006 sub-suite.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Suite {
    /// CINT2006 — integer benchmarks.
    Int,
    /// CFP2006 — floating-point benchmarks.
    Fp,
}

impl std::fmt::Display for Suite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Suite::Int => write!(f, "CINT2006"),
            Suite::Fp => write!(f, "CFP2006"),
        }
    }
}

/// One benchmark: identity plus its latent workload profile.
#[derive(Debug, Clone, PartialEq)]
pub struct Benchmark {
    /// SPEC benchmark name, e.g. `"libquantum"`.
    pub name: String,
    /// Sub-suite membership.
    pub suite: Suite,
    /// Application domain, e.g. `"quantum computing simulation"`.
    pub domain: String,
    /// Latent demand vector that drives the performance model.
    pub characteristics: WorkloadCharacteristics,
}

/// Shorthand for defining the catalog concisely.
#[allow(clippy::too_many_arguments)]
fn bench(
    name: &str,
    suite: Suite,
    domain: &str,
    instr_e9: f64,
    ilp: f64,
    fp: f64,
    mem: f64,
    branch: f64,
    mispredict: f64,
    ws_mib: f64,
    stream: f64,
    alpha: f64,
    bw: f64,
    mlp: f64,
    regularity: f64,
) -> Benchmark {
    Benchmark {
        name: name.to_owned(),
        suite,
        domain: domain.to_owned(),
        characteristics: WorkloadCharacteristics {
            instr_e9,
            ilp,
            fp_fraction: fp,
            mem_fraction: mem,
            branch_fraction: branch,
            mispredict_rate: mispredict,
            working_set_mib: ws_mib,
            stream_fraction: stream,
            locality_alpha: alpha,
            bandwidth_demand: bw,
            mlp,
            regularity,
        },
    }
}

/// Builds the full 29-benchmark SPEC CPU2006 catalog.
///
/// The ordering is the paper's Figure 6/7 ordering (alphabetical, int and fp
/// interleaved).
#[rustfmt::skip] // keep the one-row-per-entry data table aligned
pub fn spec_cpu2006() -> Vec<Benchmark> {
    use Suite::{Fp, Int};
    vec![
        //     name          suite  domain                         instr  ilp  fp    mem   br    mis    ws      strm  alpha bw    mlp  reg
        bench("astar",       Int, "path-finding AI",               1200.0, 1.6, 0.00, 0.32, 0.16, 0.070, 18.0,  0.03, 0.45, 1.2,  1.3, 0.25),
        bench("bwaves",      Fp,  "fluid dynamics",                2600.0, 3.2, 0.42, 0.34, 0.05, 0.010, 180.0, 0.45, 0.60, 6.5,  2.6, 0.80),
        bench("bzip2",       Int, "compression",                   1800.0, 2.0, 0.00, 0.30, 0.15, 0.055, 8.5,   0.02, 0.50, 1.0,  1.4, 0.35),
        bench("cactusADM",   Fp,  "general relativity",            2200.0, 2.4, 0.46, 0.38, 0.03, 0.008, 210.0, 0.55, 0.65, 8.0,  2.2, 0.70),
        bench("calculix",    Fp,  "structural mechanics",          3200.0, 3.0, 0.38, 0.30, 0.06, 0.015, 2.5,   0.03, 0.55, 2.0,  1.8, 0.65),
        bench("dealII",      Fp,  "finite element analysis",       2000.0, 2.6, 0.34, 0.34, 0.08, 0.020, 12.0,  0.05, 0.50, 2.2,  1.7, 0.55),
        bench("gamess",      Fp,  "quantum chemistry",             3000.0, 3.4, 0.40, 0.26, 0.07, 0.012, 1.2,   0.005, 0.55, 0.8,  1.5, 0.70),
        bench("gcc",         Int, "C compiler",                    1100.0, 1.8, 0.00, 0.34, 0.20, 0.085, 25.0,  0.08, 0.40, 1.8,  1.4, 0.15),
        bench("GemsFDTD",    Fp,  "electromagnetics",              2400.0, 2.8, 0.44, 0.36, 0.04, 0.010, 250.0, 0.50, 0.60, 7.0,  2.4, 0.75),
        bench("gobmk",       Int, "game AI (Go)",                  1600.0, 1.7, 0.00, 0.28, 0.21, 0.095, 3.0,   0.01, 0.50, 0.6,  1.2, 0.20),
        bench("gromacs",     Fp,  "molecular dynamics",            2800.0, 3.6, 0.44, 0.26, 0.05, 0.010, 1.0,   0.005, 0.60, 0.9,  1.6, 0.80),
        bench("h264ref",     Int, "video encoding",                2900.0, 2.4, 0.02, 0.32, 0.12, 0.040, 1.5,   0.02, 0.55, 1.5,  1.5, 0.50),
        bench("hmmer",       Int, "gene sequence search",          2500.0, 6.2, 0.02, 0.26, 0.08, 0.012, 0.6,   0.003, 0.70, 0.4,  1.3, 0.97),
        bench("lbm",         Fp,  "lattice Boltzmann fluids",      1500.0, 2.6, 0.40, 0.40, 0.02, 0.005, 420.0, 0.75, 0.70, 11.0, 3.2, 0.85),
        bench("leslie3d",    Fp,  "combustion simulation",         2100.0, 2.9, 0.43, 0.37, 0.04, 0.009, 130.0, 0.58, 0.62, 8.5,  2.7, 0.78),
        bench("libquantum",  Int, "quantum computing simulation",  1900.0, 2.8, 0.00, 0.34, 0.14, 0.010, 64.0,  0.85, 0.75, 12.5, 3.6, 0.90),
        bench("mcf",         Int, "combinatorial optimization",    500.0,  1.2, 0.00, 0.40, 0.19, 0.080, 340.0, 0.20, 0.35, 3.0,  1.8, 0.10),
        bench("milc",        Fp,  "lattice QCD",                   1700.0, 2.7, 0.41, 0.38, 0.03, 0.008, 170.0, 0.48, 0.58, 6.0,  2.3, 0.72),
        bench("namd",        Fp,  "biomolecular simulation",       3100.0, 6.0, 0.46, 0.24, 0.05, 0.008, 1.8,   0.005, 0.65, 0.5,  1.4, 0.95),
        bench("omnetpp",     Int, "discrete event simulation",     800.0,  1.4, 0.00, 0.36, 0.18, 0.075, 60.0,  0.10, 0.38, 2.0,  1.4, 0.12),
        bench("perlbench",   Int, "Perl interpreter",              1300.0, 1.9, 0.00, 0.33, 0.21, 0.080, 4.0,   0.02, 0.45, 1.3,  1.3, 0.18),
        bench("povray",      Fp,  "ray tracing",                   1900.0, 2.8, 0.36, 0.28, 0.11, 0.035, 2.5,   0.005, 0.55, 0.6,  1.3, 0.45),
        bench("sjeng",       Int, "game AI (chess)",               1700.0, 1.8, 0.00, 0.27, 0.20, 0.090, 0.4,   0.01, 0.45, 0.8,  1.2, 0.22),
        bench("soplex",      Fp,  "linear programming",            900.0,  2.2, 0.30, 0.36, 0.10, 0.045, 60.0,  0.18, 0.45, 2.8,  1.7, 0.40),
        bench("sphinx3",     Fp,  "speech recognition",            2300.0, 2.7, 0.38, 0.32, 0.08, 0.025, 40.0,  0.20, 0.50, 2.5,  1.8, 0.55),
        bench("tonto",       Fp,  "quantum crystallography",      2600.0, 3.1, 0.39, 0.28, 0.07, 0.015, 2.0,   0.01, 0.55, 1.0,  1.5, 0.68),
        bench("wrf",         Fp,  "weather modelling",             2700.0, 2.9, 0.40, 0.33, 0.06, 0.014, 110.0, 0.35, 0.55, 4.5,  2.1, 0.70),
        bench("xalancbmk",   Int, "XML transformation",            1000.0, 1.5, 0.00, 0.37, 0.22, 0.078, 28.0,  0.08, 0.40, 1.6,  1.4, 0.14),
        bench("zeusmp",      Fp,  "astrophysical simulation",      2500.0, 3.0, 0.42, 0.34, 0.04, 0.010, 140.0, 0.40, 0.58, 5.5,  2.2, 0.74),
    ]
}

/// Names of the benchmarks the paper singles out as outliers.
pub fn outlier_benchmarks() -> &'static [&'static str] {
    &[
        "libquantum",
        "cactusADM",
        "leslie3d",
        "lbm",
        "namd",
        "hmmer",
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn has_29_benchmarks() {
        let suite = spec_cpu2006();
        assert_eq!(suite.len(), 29);
    }

    #[test]
    fn int_fp_split_matches_spec() {
        let suite = spec_cpu2006();
        let ints = suite.iter().filter(|b| b.suite == Suite::Int).count();
        let fps = suite.iter().filter(|b| b.suite == Suite::Fp).count();
        assert_eq!(ints, 12);
        assert_eq!(fps, 17);
    }

    #[test]
    fn names_are_unique_and_sorted() {
        let suite = spec_cpu2006();
        let names: Vec<&str> = suite.iter().map(|b| b.name.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort_by_key(|n| n.to_lowercase());
        assert_eq!(names, sorted, "catalog must follow Figure 6/7 ordering");
        let unique: std::collections::BTreeSet<&&str> = names.iter().collect();
        assert_eq!(unique.len(), 29);
    }

    #[test]
    fn all_profiles_plausible() {
        for b in spec_cpu2006() {
            assert!(
                b.characteristics.is_plausible(),
                "{} has implausible characteristics",
                b.name
            );
        }
    }

    #[test]
    fn outliers_exist_in_catalog() {
        let suite = spec_cpu2006();
        for name in outlier_benchmarks() {
            assert!(suite.iter().any(|b| b.name == *name), "{name} missing");
        }
    }

    #[test]
    fn streaming_outliers_have_high_stream_fraction() {
        let suite = spec_cpu2006();
        for name in ["libquantum", "lbm", "leslie3d", "cactusADM"] {
            let b = suite.iter().find(|b| b.name == name).unwrap();
            assert!(
                b.characteristics.stream_fraction >= 0.5,
                "{name} stream fraction too low"
            );
        }
    }

    #[test]
    fn compute_outliers_are_regular_with_small_ws() {
        let suite = spec_cpu2006();
        for name in ["namd", "hmmer"] {
            let b = suite.iter().find(|b| b.name == name).unwrap();
            assert!(b.characteristics.regularity >= 0.9);
            assert!(b.characteristics.ilp >= 5.0);
            assert!(b.characteristics.working_set_mib <= 2.0);
        }
    }

    #[test]
    fn suite_display() {
        assert_eq!(Suite::Int.to_string(), "CINT2006");
        assert_eq!(Suite::Fp.to_string(), "CFP2006");
    }
}

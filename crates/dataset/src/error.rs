use std::error::Error;
use std::fmt;

/// Errors produced by the dataset substrate.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DatasetError {
    /// A configuration value was outside its valid domain.
    InvalidConfig {
        /// Parameter name.
        name: &'static str,
        /// Offending value, formatted for display.
        value: String,
    },
    /// An index (machine or benchmark) was out of bounds.
    IndexOutOfBounds {
        /// What kind of index.
        what: &'static str,
        /// The offending index.
        index: usize,
        /// The valid bound (exclusive).
        bound: usize,
    },
    /// A lookup by name failed.
    NotFound {
        /// What kind of entity.
        what: &'static str,
        /// The name that was not found.
        name: String,
    },
    /// A required collection was empty (no benchmarks, no machines, or a
    /// zero-area score matrix).
    Empty {
        /// What was empty.
        what: &'static str,
    },
    /// An ingest entry's score column did not match the database's
    /// benchmark count (a pushed machine must score every benchmark row).
    BenchmarkCountMismatch {
        /// The database's benchmark count.
        expected: usize,
        /// The offending entry's score count.
        got: usize,
    },
    /// Building a serving index over the catalog failed (degenerate
    /// scores, too few machines for the projection, …).
    IndexBuild {
        /// Why the build failed.
        reason: String,
    },
}

impl fmt::Display for DatasetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatasetError::InvalidConfig { name, value } => {
                write!(f, "invalid configuration {name}: {value}")
            }
            DatasetError::IndexOutOfBounds { what, index, bound } => {
                write!(f, "{what} index {index} out of bounds (< {bound})")
            }
            DatasetError::NotFound { what, name } => {
                write!(f, "{what} not found: {name}")
            }
            DatasetError::Empty { what } => {
                write!(f, "{what} must not be empty")
            }
            DatasetError::BenchmarkCountMismatch { expected, got } => {
                write!(
                    f,
                    "ingest entry scores {got} benchmarks, database has {expected}"
                )
            }
            DatasetError::IndexBuild { reason } => {
                write!(f, "index build failed: {reason}")
            }
        }
    }
}

impl Error for DatasetError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = DatasetError::IndexOutOfBounds {
            what: "machine",
            index: 200,
            bound: 117,
        };
        assert!(e.to_string().contains("machine"));
        assert!(e.to_string().contains("200"));
        assert!(DatasetError::NotFound {
            what: "benchmark",
            name: "foo".into()
        }
        .to_string()
        .contains("foo"));
        let mismatch = DatasetError::BenchmarkCountMismatch {
            expected: 29,
            got: 28,
        };
        assert!(mismatch.to_string().contains("29"));
        assert!(mismatch.to_string().contains("28"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DatasetError>();
    }
}

//! Latent microarchitecture parameters.
//!
//! Each machine carries a [`MicroArch`] vector that the CPI-stack
//! performance model consumes. The values for the catalog machines are
//! realistic for the era (frequency, cache sizes, memory latency and
//! bandwidth) but are *model parameters*, not measurements.

/// Latent microarchitecture parameter vector of one machine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MicroArch {
    /// Core clock frequency in GHz.
    pub freq_ghz: f64,
    /// Superscalar issue width.
    pub width: f64,
    /// Dynamic pipeline efficiency in `(0, 1]` — how much of the width an
    /// out-of-order engine sustains on irregular code.
    pub pipeline_eff: f64,
    /// Additional efficiency earned on *regular* code (software pipelining,
    /// predication). Dominant for in-order/EPIC designs, small for OoO.
    pub static_bonus: f64,
    /// L1 data cache size in KiB.
    pub l1d_kib: f64,
    /// L2 cache size in KiB (per core / effective).
    pub l2_kib: f64,
    /// L3 cache size in KiB; `0` if absent.
    pub l3_kib: f64,
    /// L2 hit latency in cycles.
    pub l2_lat_cycles: f64,
    /// L3 hit latency in cycles (unused when no L3).
    pub l3_lat_cycles: f64,
    /// Main-memory latency in nanoseconds.
    pub mem_lat_ns: f64,
    /// Sustainable memory bandwidth in GB/s.
    pub mem_bw_gbs: f64,
    /// Branch misprediction penalty in cycles.
    pub branch_penalty: f64,
    /// Scale on a workload's baseline misprediction rate: `< 1` is a better
    /// predictor than the baseline, `> 1` worse.
    pub branch_pred_scale: f64,
    /// Extra cycles per floating-point instruction (lower = stronger FPU).
    pub fp_cost: f64,
    /// Hardware prefetcher effectiveness in `[0, 1]` on streaming accesses.
    pub prefetch_eff: f64,
    /// Fraction of a workload's memory-level parallelism the core can
    /// actually exploit, in `[0, 1]` (OoO depth, MSHRs).
    pub mlp_capability: f64,
    /// Compiler/ISA gain on *regular, high-ILP* code: the fraction of
    /// dynamic work eliminated by software pipelining and predication.
    /// Dominant for EPIC (Itanium + icc), near zero elsewhere.
    pub compiler_gain: f64,
}

impl MicroArch {
    /// Sanity-checks parameter ranges.
    pub fn is_plausible(&self) -> bool {
        self.freq_ghz > 0.05
            && self.freq_ghz < 6.0
            && self.width >= 1.0
            && self.width <= 8.0
            && self.pipeline_eff > 0.0
            && self.pipeline_eff <= 1.0
            && self.static_bonus >= 0.0
            && self.static_bonus <= 1.0
            && self.l1d_kib > 0.0
            && self.l2_kib >= 0.0
            && self.l3_kib >= 0.0
            && self.l2_lat_cycles > 0.0
            && self.l3_lat_cycles > 0.0
            && self.mem_lat_ns > 0.0
            && self.mem_bw_gbs > 0.0
            && self.branch_penalty > 0.0
            && self.branch_pred_scale > 0.0
            && self.fp_cost >= 0.0
            && (0.0..=1.0).contains(&self.prefetch_eff)
            && (0.0..=1.0).contains(&self.mlp_capability)
            && (0.0..=1.0).contains(&self.compiler_gain)
    }

    /// The modeled SUN Ultra5 (296 MHz UltraSPARC IIi) SPEC reference
    /// machine: narrow in-order core, small off-chip L2, slow memory.
    pub fn ultra5_reference() -> Self {
        MicroArch {
            freq_ghz: 0.296,
            width: 2.0,
            pipeline_eff: 0.45,
            static_bonus: 0.10,
            l1d_kib: 16.0,
            l2_kib: 2048.0,
            l3_kib: 0.0,
            l2_lat_cycles: 10.0,
            l3_lat_cycles: 30.0,
            mem_lat_ns: 250.0,
            mem_bw_gbs: 0.5,
            branch_penalty: 4.0,
            branch_pred_scale: 1.6,
            fp_cost: 1.2,
            prefetch_eff: 0.0,
            mlp_capability: 0.05,
            compiler_gain: 0.02,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_machine_is_plausible() {
        assert!(MicroArch::ultra5_reference().is_plausible());
    }

    #[test]
    fn plausibility_rejects_out_of_range() {
        let mut m = MicroArch::ultra5_reference();
        m.freq_ghz = 10.0;
        assert!(!m.is_plausible());
        let mut m = MicroArch::ultra5_reference();
        m.pipeline_eff = 0.0;
        assert!(!m.is_plausible());
        let mut m = MicroArch::ultra5_reference();
        m.prefetch_eff = 1.5;
        assert!(!m.is_plausible());
    }
}

//! Machine identity: vendor, processor family, CPU nickname, release year.

use crate::microarch::MicroArch;

/// Hardware vendor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Vendor {
    /// Advanced Micro Devices.
    Amd,
    /// International Business Machines.
    Ibm,
    /// Intel Corporation.
    Intel,
    /// Sun Microsystems / Fujitsu (SPARC).
    Sun,
}

impl std::fmt::Display for Vendor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Vendor::Amd => write!(f, "AMD"),
            Vendor::Ibm => write!(f, "IBM"),
            Vendor::Intel => write!(f, "Intel"),
            Vendor::Sun => write!(f, "Sun"),
        }
    }
}

/// The 17 processor families of the paper's Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ProcessorFamily {
    /// AMD Opteron (K10).
    OpteronK10,
    /// AMD Opteron (K8).
    OpteronK8,
    /// AMD Phenom.
    Phenom,
    /// AMD Turion.
    Turion,
    /// IBM POWER5.
    Power5,
    /// IBM POWER6.
    Power6,
    /// Intel Core 2.
    Core2,
    /// Intel Core Duo.
    CoreDuo,
    /// Intel Core i7.
    CoreI7,
    /// Intel Itanium.
    Itanium,
    /// Intel Pentium D.
    PentiumD,
    /// Intel Pentium Dual-Core.
    PentiumDualCore,
    /// Intel Pentium M.
    PentiumM,
    /// Intel Xeon.
    Xeon,
    /// SPARC64 VI.
    Sparc64Vi,
    /// SPARC64 VII.
    Sparc64Vii,
    /// UltraSPARC III.
    UltraSparcIii,
}

impl ProcessorFamily {
    /// All 17 families in Table 1 order.
    pub const ALL: [ProcessorFamily; 17] = [
        ProcessorFamily::OpteronK10,
        ProcessorFamily::OpteronK8,
        ProcessorFamily::Phenom,
        ProcessorFamily::Turion,
        ProcessorFamily::Power5,
        ProcessorFamily::Power6,
        ProcessorFamily::Core2,
        ProcessorFamily::CoreDuo,
        ProcessorFamily::CoreI7,
        ProcessorFamily::Itanium,
        ProcessorFamily::PentiumD,
        ProcessorFamily::PentiumDualCore,
        ProcessorFamily::PentiumM,
        ProcessorFamily::Xeon,
        ProcessorFamily::Sparc64Vi,
        ProcessorFamily::Sparc64Vii,
        ProcessorFamily::UltraSparcIii,
    ];

    /// Vendor of the family.
    pub fn vendor(&self) -> Vendor {
        match self {
            ProcessorFamily::OpteronK10
            | ProcessorFamily::OpteronK8
            | ProcessorFamily::Phenom
            | ProcessorFamily::Turion => Vendor::Amd,
            ProcessorFamily::Power5 | ProcessorFamily::Power6 => Vendor::Ibm,
            ProcessorFamily::Core2
            | ProcessorFamily::CoreDuo
            | ProcessorFamily::CoreI7
            | ProcessorFamily::Itanium
            | ProcessorFamily::PentiumD
            | ProcessorFamily::PentiumDualCore
            | ProcessorFamily::PentiumM
            | ProcessorFamily::Xeon => Vendor::Intel,
            ProcessorFamily::Sparc64Vi
            | ProcessorFamily::Sparc64Vii
            | ProcessorFamily::UltraSparcIii => Vendor::Sun,
        }
    }
}

impl std::fmt::Display for ProcessorFamily {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            ProcessorFamily::OpteronK10 => "AMD Opteron (K10)",
            ProcessorFamily::OpteronK8 => "AMD Opteron (K8)",
            ProcessorFamily::Phenom => "AMD Phenom",
            ProcessorFamily::Turion => "AMD Turion",
            ProcessorFamily::Power5 => "IBM POWER 5",
            ProcessorFamily::Power6 => "IBM POWER 6",
            ProcessorFamily::Core2 => "Intel Core 2",
            ProcessorFamily::CoreDuo => "Intel Core Duo",
            ProcessorFamily::CoreI7 => "Intel Core i7",
            ProcessorFamily::Itanium => "Intel Itanium",
            ProcessorFamily::PentiumD => "Intel Pentium D",
            ProcessorFamily::PentiumDualCore => "Intel Pentium Dual-Core",
            ProcessorFamily::PentiumM => "Intel Pentium M",
            ProcessorFamily::Xeon => "Intel Xeon",
            ProcessorFamily::Sparc64Vi => "SPARC64 VI",
            ProcessorFamily::Sparc64Vii => "SPARC64 VII",
            ProcessorFamily::UltraSparcIii => "UltraSPARC III",
        };
        write!(f, "{name}")
    }
}

/// One commercial machine in the performance database.
#[derive(Debug, Clone, PartialEq)]
pub struct Machine {
    /// Unique display name, e.g. `"Gainestown #2"`.
    pub name: String,
    /// Processor family (Table 1 row).
    pub family: ProcessorFamily,
    /// CPU nickname within the family, e.g. `"Gainestown"`.
    pub nickname: String,
    /// Release year of the system.
    pub year: u16,
    /// Latent microarchitecture parameters driving the performance model.
    pub micro: MicroArch,
}

impl Machine {
    /// Vendor, derived from the family.
    pub fn vendor(&self) -> Vendor {
        self.family.vendor()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seventeen_families() {
        assert_eq!(ProcessorFamily::ALL.len(), 17);
        // All distinct.
        let set: std::collections::BTreeSet<_> = ProcessorFamily::ALL.iter().collect();
        assert_eq!(set.len(), 17);
    }

    #[test]
    fn vendors_match_table1() {
        assert_eq!(ProcessorFamily::OpteronK10.vendor(), Vendor::Amd);
        assert_eq!(ProcessorFamily::Power6.vendor(), Vendor::Ibm);
        assert_eq!(ProcessorFamily::Xeon.vendor(), Vendor::Intel);
        assert_eq!(ProcessorFamily::Sparc64Vii.vendor(), Vendor::Sun);
    }

    #[test]
    fn display_matches_paper_naming() {
        assert_eq!(ProcessorFamily::OpteronK10.to_string(), "AMD Opteron (K10)");
        assert_eq!(ProcessorFamily::UltraSparcIii.to_string(), "UltraSPARC III");
        assert_eq!(Vendor::Amd.to_string(), "AMD");
    }
}

//! The PCA bucket index behind approximate serving: a coarse partition of
//! the machine catalog used to short-circuit exact model evaluation.
//!
//! [`BucketIndex::build`] projects every machine's benchmark column into
//! the top-`c` principal components of the **log-score** space (SPEC
//! ratios are ratio-scaled, and the serving models fit in log domain, so
//! machine similarity lives there too — the same convention as the
//! machine-space analysis in `core`), then assigns each machine to one of
//! `B` equal-width buckets along the leading component. Each non-empty
//! bucket carries
//!
//! * its member machines (ascending catalog order),
//! * its component-space centroid (the mean projection of its members),
//!   and
//! * a **reconstructed benchmark-space centroid column**: the centroid
//!   mapped back through the kept components and exponentiated out of log
//!   space. The reconstruction is strictly positive, so the serving
//!   models' log-domain fits accept it as a synthetic "machine" — the
//!   coarse ranking scores exactly these pseudo-machines.
//!
//! The index is a pure function of `(catalog, n_components, n_buckets)`:
//! it reads scores only through [`DatabaseView`], whose dense and sharded
//! backings return identical `f64` bits, and every reduction runs in a
//! fixed sequential order — so the index (and anything derived from it)
//! is bitwise-identical across backings and thread counts. It stamps the
//! [`DatabaseView::catalog_version`] it was built at; after an ingest
//! moves the version, rebuilding from the grown catalog is **identical to
//! building from scratch** (there is no incremental state to drift).

use datatrans_linalg::Matrix;
use datatrans_ml::pca::Pca;

use crate::view::DatabaseView;
use crate::{DatasetError, Result};

/// A fitted bucket index over one catalog version.
#[derive(Debug, Clone, PartialEq)]
pub struct BucketIndex {
    /// Number of kept principal components.
    n_components: usize,
    /// Number of buckets along the leading component.
    n_buckets: usize,
    /// The catalog version the index was built at.
    catalog_version: u64,
    /// The fitted log-space projection.
    pca: Pca,
    /// `assignment[m]` = bucket of machine `m`.
    assignment: Vec<usize>,
    /// `members[b]` = machines in bucket `b`, ascending.
    members: Vec<Vec<usize>>,
    /// `centroids[b]` = component-space centroid of bucket `b` (empty for
    /// an empty bucket).
    centroids: Vec<Vec<f64>>,
    /// `centroid_columns[b]` = reconstructed benchmark-space column of
    /// bucket `b`'s centroid, strictly positive (empty for an empty
    /// bucket).
    centroid_columns: Vec<Vec<f64>>,
    /// Span of the leading component over the catalog (`lo`, `hi`).
    span: (f64, f64),
}

impl BucketIndex {
    /// Builds the index over the view's current catalog.
    ///
    /// # Errors
    ///
    /// * [`DatasetError::InvalidConfig`] if `n_buckets` is zero or
    ///   `n_components` is zero / exceeds the benchmark count.
    /// * [`DatasetError::IndexBuild`] if the projection cannot be fitted:
    ///   fewer than two machines, non-positive scores (the log transform
    ///   needs ratios), or a degenerate constant-variance catalog.
    pub fn build<D: DatabaseView + ?Sized>(
        db: &D,
        n_components: usize,
        n_buckets: usize,
    ) -> Result<Self> {
        let n_benchmarks = db.n_benchmarks();
        let n_machines = db.n_machines();
        if n_buckets == 0 {
            return Err(DatasetError::InvalidConfig {
                name: "n_buckets",
                value: "0".to_owned(),
            });
        }
        if n_components == 0 || n_components > n_benchmarks {
            return Err(DatasetError::InvalidConfig {
                name: "n_components",
                value: format!("{n_components} ({n_benchmarks} benchmarks)"),
            });
        }
        for b in 0..n_benchmarks {
            for m in 0..n_machines {
                let s = db.score(b, m);
                if !(s.is_finite() && s > 0.0) {
                    return Err(DatasetError::IndexBuild {
                        reason: format!(
                            "score({b}, {m}) = {s} is not a positive ratio; \
                             the log-space projection is undefined"
                        ),
                    });
                }
            }
        }
        // Machines as samples, benchmarks as features, in log-score space.
        let samples = Matrix::from_fn(n_machines, n_benchmarks, |m, b| db.score(b, m).ln());
        let pca = Pca::fit(&samples, n_components).map_err(|e| DatasetError::IndexBuild {
            reason: e.to_string(),
        })?;
        let projected = pca
            .transform(&samples)
            .map_err(|e| DatasetError::IndexBuild {
                reason: e.to_string(),
            })?;

        // Equal-width buckets along the leading component, spanning the
        // catalog's min..max. A zero-width span (all machines project to
        // one point) degenerates to a single occupied bucket.
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for m in 0..n_machines {
            let z = projected[(m, 0)];
            lo = lo.min(z);
            hi = hi.max(z);
        }
        let width = hi - lo;
        let mut assignment = Vec::with_capacity(n_machines);
        let mut members: Vec<Vec<usize>> = vec![Vec::new(); n_buckets];
        for m in 0..n_machines {
            let bucket = if width > 0.0 {
                let t = (projected[(m, 0)] - lo) / width * n_buckets as f64;
                (t.floor() as usize).min(n_buckets - 1)
            } else {
                0
            };
            assignment.push(bucket);
            members[bucket].push(m);
        }

        // Component-space centroids (fixed member order, sequential sum)
        // and their benchmark-space reconstructions.
        let mut centroids: Vec<Vec<f64>> = Vec::with_capacity(n_buckets);
        let mut centroid_columns: Vec<Vec<f64>> = Vec::with_capacity(n_buckets);
        for bucket_members in &members {
            if bucket_members.is_empty() {
                centroids.push(Vec::new());
                centroid_columns.push(Vec::new());
                continue;
            }
            let mut centroid = vec![0.0; n_components];
            for &m in bucket_members {
                for (j, slot) in centroid.iter_mut().enumerate() {
                    *slot += projected[(m, j)];
                }
            }
            let count = bucket_members.len() as f64;
            for slot in centroid.iter_mut() {
                *slot /= count;
            }
            let column = reconstruct_column(&pca, &centroid);
            if column.iter().any(|v| !(v.is_finite() && *v > 0.0)) {
                return Err(DatasetError::IndexBuild {
                    reason: "reconstructed centroid column left the positive score domain"
                        .to_owned(),
                });
            }
            centroids.push(centroid);
            centroid_columns.push(column);
        }

        Ok(BucketIndex {
            n_components,
            n_buckets,
            catalog_version: db.catalog_version(),
            pca,
            assignment,
            members,
            centroids,
            centroid_columns,
            span: (lo, hi),
        })
    }

    /// Number of kept principal components.
    pub fn n_components(&self) -> usize {
        self.n_components
    }

    /// Number of buckets along the leading component.
    pub fn n_buckets(&self) -> usize {
        self.n_buckets
    }

    /// The catalog version the index was built at.
    pub fn catalog_version(&self) -> u64 {
        self.catalog_version
    }

    /// Number of machines the index covers.
    pub fn n_machines(&self) -> usize {
        self.assignment.len()
    }

    /// The bucket of machine `m`.
    ///
    /// # Panics
    ///
    /// Panics if `m` is at or past the indexed machine count.
    pub fn bucket_of(&self, m: usize) -> usize {
        self.assignment[m]
    }

    /// Members of bucket `b`, in ascending catalog order.
    ///
    /// # Panics
    ///
    /// Panics if `b >= n_buckets`.
    pub fn members(&self, b: usize) -> &[usize] {
        &self.members[b]
    }

    /// Component-space centroid of bucket `b` (empty for an empty bucket).
    ///
    /// # Panics
    ///
    /// Panics if `b >= n_buckets`.
    pub fn centroid(&self, b: usize) -> &[f64] {
        &self.centroids[b]
    }

    /// Reconstructed benchmark-space centroid column of bucket `b`
    /// (strictly positive, `n_benchmarks` entries; empty for an empty
    /// bucket).
    ///
    /// # Panics
    ///
    /// Panics if `b >= n_buckets`.
    pub fn centroid_column(&self, b: usize) -> &[f64] {
        &self.centroid_columns[b]
    }

    /// Number of non-empty buckets.
    pub fn occupied_buckets(&self) -> usize {
        self.members.iter().filter(|m| !m.is_empty()).count()
    }

    /// Span (`lo`, `hi`) of the leading component over the catalog.
    pub fn span(&self) -> (f64, f64) {
        self.span
    }
}

/// Maps a component-space point back to a benchmark-space score column:
/// `exp(mean + components · z)`, the inverse of the log-space projection
/// restricted to the kept components.
fn reconstruct_column(pca: &Pca, z: &[f64]) -> Vec<f64> {
    let components = pca.components();
    pca.mean()
        .iter()
        .enumerate()
        .map(|(f, &mean)| {
            let mut log_score = mean;
            for (j, &zj) in z.iter().enumerate() {
                log_score += components[(f, j)] * zj;
            }
            log_score.exp()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate, synthesize_ingest, DatasetConfig};
    use crate::sharded::ShardedPerfDatabase;

    fn db() -> crate::database::PerfDatabase {
        generate(&DatasetConfig::default()).unwrap()
    }

    #[test]
    fn assignment_partitions_the_catalog() {
        let db = db();
        let index = BucketIndex::build(&db, 3, 8).unwrap();
        assert_eq!(index.n_machines(), db.n_machines());
        assert_eq!(index.n_components(), 3);
        assert_eq!(index.n_buckets(), 8);
        assert_eq!(index.catalog_version(), 0);
        let mut seen = vec![false; db.n_machines()];
        for b in 0..index.n_buckets() {
            let mut previous = None;
            for &m in index.members(b) {
                assert_eq!(index.bucket_of(m), b);
                assert!(previous.is_none_or(|p| p < m), "members not ascending");
                previous = Some(m);
                assert!(!seen[m], "machine {m} in two buckets");
                seen[m] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "machine missing from every bucket");
        let total: usize = (0..index.n_buckets()).map(|b| index.members(b).len()).sum();
        assert_eq!(total, db.n_machines());
        assert!(
            index.occupied_buckets() >= 2,
            "catalog collapsed to one bucket"
        );
    }

    #[test]
    fn centroid_columns_are_positive_and_sized() {
        let db = db();
        let index = BucketIndex::build(&db, 2, 6).unwrap();
        for b in 0..index.n_buckets() {
            if index.members(b).is_empty() {
                assert!(index.centroid_column(b).is_empty());
                assert!(index.centroid(b).is_empty());
                continue;
            }
            assert_eq!(index.centroid(b).len(), 2);
            let column = index.centroid_column(b);
            assert_eq!(column.len(), db.n_benchmarks());
            assert!(column.iter().all(|v| v.is_finite() && *v > 0.0));
        }
    }

    #[test]
    fn dense_and_sharded_builds_are_bitwise_identical() {
        let db = db();
        let sharded = ShardedPerfDatabase::from_dense(&db, 8).unwrap();
        let a = BucketIndex::build(&db, 3, 8).unwrap();
        let b = BucketIndex::build(&sharded, 3, 8).unwrap();
        assert_eq!(a, b);
        for bucket in 0..a.n_buckets() {
            for (x, y) in a
                .centroid_column(bucket)
                .iter()
                .zip(b.centroid_column(bucket))
            {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    fn rebuild_after_ingest_matches_scratch_build() {
        let mut grown = db();
        let batch = synthesize_ingest(7, grown.benchmarks(), 5, 0.015).unwrap();
        grown.push_machines(&batch).unwrap();
        let rebuilt = BucketIndex::build(&grown, 3, 8).unwrap();
        assert_eq!(rebuilt.catalog_version(), 1);
        assert_eq!(rebuilt.n_machines(), 122);
        // A fresh build over the same grown catalog is the same index.
        let scratch = BucketIndex::build(&grown, 3, 8).unwrap();
        assert_eq!(rebuilt, scratch);
    }

    #[test]
    fn degenerate_parameters_are_typed_errors() {
        let db = db();
        assert!(matches!(
            BucketIndex::build(&db, 3, 0),
            Err(DatasetError::InvalidConfig {
                name: "n_buckets",
                ..
            })
        ));
        assert!(matches!(
            BucketIndex::build(&db, 0, 4),
            Err(DatasetError::InvalidConfig {
                name: "n_components",
                ..
            })
        ));
        assert!(matches!(
            BucketIndex::build(&db, 30, 4),
            Err(DatasetError::InvalidConfig {
                name: "n_components",
                ..
            })
        ));
    }

    #[test]
    fn more_buckets_refine_the_partition() {
        let db = db();
        let coarse = BucketIndex::build(&db, 1, 2).unwrap();
        let fine = BucketIndex::build(&db, 1, 16).unwrap();
        assert!(fine.occupied_buckets() >= coarse.occupied_buckets());
        // Equal-width slicing along the same leading axis: spans agree.
        let (a_lo, a_hi) = coarse.span();
        let (b_lo, b_hi) = fine.span();
        assert_eq!(a_lo.to_bits(), b_lo.to_bits());
        assert_eq!(a_hi.to_bits(), b_hi.to_bits());
    }
}

//! The assembled performance database: benchmarks × machines score matrix
//! plus metadata, the synthetic stand-in for the SPEC results archive.

use datatrans_linalg::{Matrix, VecView};

use crate::benchmark::Benchmark;
use crate::machine::{Machine, ProcessorFamily};
use crate::view::{DatabaseView, DbReader, RowSegment};
use crate::{DatasetError, Result};

/// One machine to append to a database: metadata plus its score column.
///
/// `scores[b]` is the machine's score on benchmark row `b` — exactly the
/// machine column the database will store, in benchmark row order.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineIngest {
    /// The machine's catalog metadata.
    pub machine: Machine,
    /// One score per benchmark, in benchmark row order.
    pub scores: Vec<f64>,
}

/// Validates an ingest batch against a database's benchmark count: every
/// entry must score exactly `n_benchmarks` rows, with finite positive
/// values (the same invariant [`PerfDatabase::new`] enforces).
pub(crate) fn validate_ingest(batch: &[MachineIngest], n_benchmarks: usize) -> Result<()> {
    for entry in batch {
        if entry.scores.len() != n_benchmarks {
            return Err(DatasetError::BenchmarkCountMismatch {
                expected: n_benchmarks,
                got: entry.scores.len(),
            });
        }
        if entry.scores.iter().any(|s| !s.is_finite() || *s <= 0.0) {
            return Err(DatasetError::InvalidConfig {
                name: "scores",
                value: "must be finite and positive".into(),
            });
        }
    }
    Ok(())
}

/// A complete performance database.
///
/// Scores are SPEC-style speed ratios (higher is better), stored as a dense
/// [`Matrix`] with **rows = benchmarks** and **columns = machines**,
/// matching the paper's Figure 2 orientation. Accessors expose the matrix
/// and zero-copy row/column views so consumers can read either
/// benchmark-major or machine-major without materializing copies.
///
/// The database carries a monotonically increasing **catalog version**,
/// bumped by every non-empty [`PerfDatabase::push_machines`] ingest; the
/// serving layer's result cache keys on it so stale cached rankings can
/// never be served after the catalog changes.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfDatabase {
    benchmarks: Vec<Benchmark>,
    machines: Vec<Machine>,
    /// `benchmarks × machines` score matrix.
    scores: Matrix,
    /// Ingest counter: 0 for a freshly built catalog, +1 per non-empty
    /// [`PerfDatabase::push_machines`] call.
    catalog_version: u64,
}

impl PerfDatabase {
    /// Assembles a database from parts (`scores` row-major,
    /// `scores[b * machines.len() + m]`).
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::Empty`] if `benchmarks` or `machines` is
    /// empty (a zero-area score matrix is not a database), and
    /// [`DatasetError::InvalidConfig`] if the score length does not equal
    /// `benchmarks × machines`, or if any score is not finite and positive.
    pub fn new(
        benchmarks: Vec<Benchmark>,
        machines: Vec<Machine>,
        scores: Vec<f64>,
    ) -> Result<Self> {
        if benchmarks.is_empty() {
            return Err(DatasetError::Empty { what: "benchmarks" });
        }
        if machines.is_empty() {
            return Err(DatasetError::Empty { what: "machines" });
        }
        if scores.iter().any(|s| !s.is_finite() || *s <= 0.0) {
            return Err(DatasetError::InvalidConfig {
                name: "scores",
                value: "must be finite and positive".into(),
            });
        }
        let scores = Matrix::from_vec(benchmarks.len(), machines.len(), scores).map_err(|_| {
            DatasetError::InvalidConfig {
                name: "scores length",
                value: format!(
                    "expected {} benchmarks × {} machines",
                    benchmarks.len(),
                    machines.len()
                ),
            }
        })?;
        Ok(PerfDatabase {
            benchmarks,
            machines,
            scores,
            catalog_version: 0,
        })
    }

    /// The catalog version: 0 for a freshly built database, incremented by
    /// every non-empty [`PerfDatabase::push_machines`] call. Monotonically
    /// increasing, so `(request fingerprint, catalog version)` uniquely
    /// identifies a serving result against this catalog's history.
    pub fn catalog_version(&self) -> u64 {
        self.catalog_version
    }

    /// Overrides the catalog version (crate-internal: lets
    /// [`crate::sharded::ShardedPerfDatabase::to_dense`] propagate the
    /// sharded backing's ingest history into the reassembled dense copy).
    pub(crate) fn set_catalog_version(&mut self, version: u64) {
        self.catalog_version = version;
    }

    /// Appends machines (columns) to the database, bumping the catalog
    /// version.
    ///
    /// An empty batch is a no-op and does **not** bump the version — it
    /// changes nothing, so it must not invalidate cached results. Scores
    /// are stored verbatim, so a catalog built incrementally through this
    /// method is bitwise-identical to the same catalog built at once.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::BenchmarkCountMismatch`] if an entry's score
    /// column does not cover every benchmark row, and
    /// [`DatasetError::InvalidConfig`] if any score is not finite and
    /// positive. On error the database is unchanged.
    pub fn push_machines(&mut self, batch: &[MachineIngest]) -> Result<()> {
        if batch.is_empty() {
            return Ok(());
        }
        let n_benchmarks = self.benchmarks.len();
        validate_ingest(batch, n_benchmarks)?;
        let new_cols = self.machines.len() + batch.len();
        let mut data = Vec::with_capacity(n_benchmarks * new_cols);
        for b in 0..n_benchmarks {
            data.extend_from_slice(self.scores.row(b));
            data.extend(batch.iter().map(|entry| entry.scores[b]));
        }
        self.scores = Matrix::from_vec(n_benchmarks, new_cols, data)
            .expect("appended matrix has exactly benchmarks × machines entries");
        self.machines
            .extend(batch.iter().map(|e| e.machine.clone()));
        self.catalog_version += 1;
        Ok(())
    }

    /// Number of benchmarks (rows).
    pub fn n_benchmarks(&self) -> usize {
        self.benchmarks.len()
    }

    /// Number of machines (columns).
    pub fn n_machines(&self) -> usize {
        self.machines.len()
    }

    /// Benchmark metadata.
    pub fn benchmarks(&self) -> &[Benchmark] {
        &self.benchmarks
    }

    /// Machine metadata.
    pub fn machines(&self) -> &[Machine] {
        &self.machines
    }

    /// The full `benchmarks × machines` score matrix.
    pub fn score_matrix(&self) -> &Matrix {
        &self.scores
    }

    /// Score of benchmark `b` on machine `m`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of bounds.
    pub fn score(&self, b: usize, m: usize) -> f64 {
        assert!(b < self.benchmarks.len(), "benchmark index out of bounds");
        assert!(m < self.machines.len(), "machine index out of bounds");
        self.scores[(b, m)]
    }

    /// All scores of one benchmark across machines (one matrix row),
    /// borrowed.
    ///
    /// # Panics
    ///
    /// Panics if `b` is out of bounds.
    pub fn benchmark_row(&self, b: usize) -> &[f64] {
        assert!(b < self.benchmarks.len(), "benchmark index out of bounds");
        self.scores.row(b)
    }

    /// All scores of one machine across benchmarks (one matrix column), as
    /// a zero-copy strided view.
    ///
    /// # Panics
    ///
    /// Panics if `m` is out of bounds.
    pub fn machine_column(&self, m: usize) -> VecView<'_> {
        assert!(m < self.machines.len(), "machine index out of bounds");
        self.scores.col_view(m)
    }

    /// Looks up a benchmark index by name.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::NotFound`] if no benchmark has that name.
    pub fn benchmark_index(&self, name: &str) -> Result<usize> {
        self.benchmarks
            .iter()
            .position(|b| b.name == name)
            .ok_or_else(|| DatasetError::NotFound {
                what: "benchmark",
                name: name.to_owned(),
            })
    }

    /// Indices of all machines belonging to `family`.
    pub fn machines_in_family(&self, family: ProcessorFamily) -> Vec<usize> {
        self.machines
            .iter()
            .enumerate()
            .filter(|(_, m)| m.family == family)
            .map(|(i, _)| i)
            .collect()
    }

    /// Indices of all machines released in `year`.
    pub fn machines_in_year(&self, year: u16) -> Vec<usize> {
        self.machines
            .iter()
            .enumerate()
            .filter(|(_, m)| m.year == year)
            .map(|(i, _)| i)
            .collect()
    }

    /// Indices of all machines released strictly before `year`.
    pub fn machines_before_year(&self, year: u16) -> Vec<usize> {
        self.machines
            .iter()
            .enumerate()
            .filter(|(_, m)| m.year < year)
            .map(|(i, _)| i)
            .collect()
    }

    /// Exports the score table as CSV: header row of machine names, then
    /// one row per benchmark.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("benchmark");
        for m in &self.machines {
            out.push(',');
            out.push_str(&format!("{} {}", m.family, m.name).replace(',', ";"));
        }
        out.push('\n');
        for (bi, b) in self.benchmarks.iter().enumerate() {
            out.push_str(&b.name);
            for mi in 0..self.machines.len() {
                out.push_str(&format!(",{:.4}", self.score(bi, mi)));
            }
            out.push('\n');
        }
        out
    }
}

impl DatabaseView for PerfDatabase {
    fn n_benchmarks(&self) -> usize {
        PerfDatabase::n_benchmarks(self)
    }

    fn n_machines(&self) -> usize {
        PerfDatabase::n_machines(self)
    }

    fn benchmarks(&self) -> &[Benchmark] {
        PerfDatabase::benchmarks(self)
    }

    fn machines(&self) -> &[Machine] {
        PerfDatabase::machines(self)
    }

    fn score(&self, b: usize, m: usize) -> f64 {
        PerfDatabase::score(self, b, m)
    }

    fn machine_column(&self, m: usize) -> VecView<'_> {
        PerfDatabase::machine_column(self, m)
    }

    fn benchmark_row_segments(&self, b: usize) -> Vec<RowSegment<'_>> {
        vec![RowSegment {
            start: 0,
            scores: self.benchmark_row(b),
        }]
    }

    fn gather(&self, benchmarks: &[usize], machines: &[usize]) -> Matrix {
        // One-pass scattered gather over the dense matrix.
        self.scores.select(benchmarks, machines)
    }

    fn catalog_version(&self) -> u64 {
        PerfDatabase::catalog_version(self)
    }

    fn reader(&self) -> DbReader<'_> {
        DbReader::Dense(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate, DatasetConfig};

    fn db() -> PerfDatabase {
        generate(&DatasetConfig::default()).unwrap()
    }

    #[test]
    fn dimensions() {
        let db = db();
        assert_eq!(db.n_benchmarks(), 29);
        assert_eq!(db.n_machines(), 117);
        assert_eq!(db.benchmark_row(0).len(), 117);
        assert_eq!(db.machine_column(0).len(), 29);
    }

    #[test]
    fn row_column_consistency() {
        let db = db();
        assert_eq!(db.benchmark_row(3)[5], db.score(3, 5));
        assert_eq!(db.machine_column(5)[3], db.score(3, 5));
    }

    #[test]
    fn score_matrix_and_views_agree() {
        let db = db();
        let m = db.score_matrix();
        assert_eq!(m.shape(), (29, 117));
        assert_eq!(m[(3, 5)], db.score(3, 5));
        assert_eq!(db.machine_column(5).to_vec(), m.col(5));
        assert_eq!(db.benchmark_row(3), m.row(3));
    }

    #[test]
    fn lookup_by_name() {
        let db = db();
        let idx = db.benchmark_index("libquantum").unwrap();
        assert_eq!(db.benchmarks()[idx].name, "libquantum");
        assert!(db.benchmark_index("not-a-benchmark").is_err());
    }

    #[test]
    fn family_and_year_filters() {
        let db = db();
        let xeons = db.machines_in_family(ProcessorFamily::Xeon);
        assert_eq!(xeons.len(), 39); // 13 nicknames × 3
        let y2009 = db.machines_in_year(2009);
        assert!(!y2009.is_empty());
        let before = db.machines_before_year(2009);
        assert_eq!(y2009.len() + before.len(), 117); // catalog max year is 2009
    }

    #[test]
    fn csv_shape() {
        let db = db();
        let csv = db.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 30); // header + 29 benchmarks
        assert_eq!(lines[0].split(',').count(), 118); // name + 117 machines
    }

    #[test]
    fn new_validates() {
        let db = db();
        let bad = PerfDatabase::new(
            db.benchmarks().to_vec(),
            db.machines().to_vec(),
            vec![1.0; 5],
        );
        assert!(bad.is_err());
        let neg = PerfDatabase::new(
            db.benchmarks().to_vec(),
            db.machines().to_vec(),
            vec![-1.0; 29 * 117],
        );
        assert!(neg.is_err());
    }

    #[test]
    fn new_rejects_empty_benchmarks() {
        let db = db();
        // A 0 × 117 database would pass the old length check (0 scores for
        // a zero-area matrix) and panic later in every accessor; it must be
        // an explicit error instead.
        assert_eq!(
            PerfDatabase::new(Vec::new(), db.machines().to_vec(), Vec::new()),
            Err(DatasetError::Empty { what: "benchmarks" })
        );
    }

    #[test]
    fn new_rejects_empty_machines() {
        let db = db();
        assert_eq!(
            PerfDatabase::new(db.benchmarks().to_vec(), Vec::new(), Vec::new()),
            Err(DatasetError::Empty { what: "machines" })
        );
    }

    #[test]
    fn new_rejects_zero_area_matrix() {
        // Both dimensions empty: the zero-area matrix case. The benchmarks
        // check fires first; the point is that it cannot construct.
        assert_eq!(
            PerfDatabase::new(Vec::new(), Vec::new(), Vec::new()),
            Err(DatasetError::Empty { what: "benchmarks" })
        );
        // Non-empty scores with empty dimensions must not sneak through
        // either.
        let db = db();
        assert!(PerfDatabase::new(Vec::new(), db.machines().to_vec(), vec![1.0; 5]).is_err());
    }

    #[test]
    fn push_appends_columns_bitwise_and_bumps_version() {
        let mut grown = db();
        let reference = db();
        assert_eq!(grown.catalog_version(), 0);
        let batch: Vec<MachineIngest> = (0..3)
            .map(|i| MachineIngest {
                machine: reference.machines()[i].clone(),
                scores: (0..29).map(|b| reference.score(b, i)).collect(),
            })
            .collect();
        grown.push_machines(&batch).unwrap();
        assert_eq!(grown.n_machines(), 120);
        assert_eq!(grown.catalog_version(), 1);
        // Existing columns untouched, new columns read back bitwise.
        for b in 0..29 {
            for m in 0..117 {
                assert_eq!(grown.score(b, m).to_bits(), reference.score(b, m).to_bits());
            }
            for (i, entry) in batch.iter().enumerate() {
                assert_eq!(grown.score(b, 117 + i).to_bits(), entry.scores[b].to_bits());
            }
        }
        grown.push_machines(&batch[..1]).unwrap();
        assert_eq!(grown.catalog_version(), 2);
    }

    #[test]
    fn empty_push_is_a_noop_without_version_bump() {
        let mut grown = db();
        let before = grown.clone();
        grown.push_machines(&[]).unwrap();
        assert_eq!(grown, before);
        assert_eq!(grown.catalog_version(), 0);
    }

    #[test]
    fn push_rejects_mismatched_and_invalid_scores() {
        let mut grown = db();
        let before = grown.clone();
        let machine = grown.machines()[0].clone();
        assert_eq!(
            grown.push_machines(&[MachineIngest {
                machine: machine.clone(),
                scores: vec![1.0; 28],
            }]),
            Err(DatasetError::BenchmarkCountMismatch {
                expected: 29,
                got: 28
            })
        );
        assert!(matches!(
            grown.push_machines(&[MachineIngest {
                machine,
                scores: vec![-1.0; 29],
            }]),
            Err(DatasetError::InvalidConfig { name: "scores", .. })
        ));
        assert_eq!(grown, before, "failed pushes must leave the db unchanged");
    }

    #[test]
    fn trait_and_inherent_accessors_agree() {
        let db = db();
        let view: &dyn DatabaseView = &db;
        assert_eq!(view.n_benchmarks(), db.n_benchmarks());
        assert_eq!(view.n_machines(), db.n_machines());
        assert_eq!(view.score(3, 5).to_bits(), db.score(3, 5).to_bits());
        assert_eq!(
            view.machine_column(5).to_vec(),
            db.machine_column(5).to_vec()
        );
        let segments = view.benchmark_row_segments(3);
        assert_eq!(segments.len(), 1);
        assert_eq!(segments[0].start, 0);
        assert_eq!(segments[0].scores, db.benchmark_row(3));
        assert_eq!(view.benchmark_row_vec(3), db.benchmark_row(3));
        let sub = view.gather(&[0, 3], &[5, 2, 116]);
        assert_eq!(sub.shape(), (2, 3));
        assert_eq!(sub[(1, 2)].to_bits(), db.score(3, 116).to_bits());
        assert_eq!(view.n_shards(), 1);
    }
}

//! The assembled performance database: benchmarks × machines score matrix
//! plus metadata, the synthetic stand-in for the SPEC results archive.

use datatrans_linalg::{Matrix, VecView};

use crate::benchmark::Benchmark;
use crate::machine::{Machine, ProcessorFamily};
use crate::view::{DatabaseView, DbReader, RowSegment};
use crate::{DatasetError, Result};

/// A complete performance database.
///
/// Scores are SPEC-style speed ratios (higher is better), stored as a dense
/// [`Matrix`] with **rows = benchmarks** and **columns = machines**,
/// matching the paper's Figure 2 orientation. Accessors expose the matrix
/// and zero-copy row/column views so consumers can read either
/// benchmark-major or machine-major without materializing copies.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfDatabase {
    benchmarks: Vec<Benchmark>,
    machines: Vec<Machine>,
    /// `benchmarks × machines` score matrix.
    scores: Matrix,
}

impl PerfDatabase {
    /// Assembles a database from parts (`scores` row-major,
    /// `scores[b * machines.len() + m]`).
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::Empty`] if `benchmarks` or `machines` is
    /// empty (a zero-area score matrix is not a database), and
    /// [`DatasetError::InvalidConfig`] if the score length does not equal
    /// `benchmarks × machines`, or if any score is not finite and positive.
    pub fn new(
        benchmarks: Vec<Benchmark>,
        machines: Vec<Machine>,
        scores: Vec<f64>,
    ) -> Result<Self> {
        if benchmarks.is_empty() {
            return Err(DatasetError::Empty { what: "benchmarks" });
        }
        if machines.is_empty() {
            return Err(DatasetError::Empty { what: "machines" });
        }
        if scores.iter().any(|s| !s.is_finite() || *s <= 0.0) {
            return Err(DatasetError::InvalidConfig {
                name: "scores",
                value: "must be finite and positive".into(),
            });
        }
        let scores = Matrix::from_vec(benchmarks.len(), machines.len(), scores).map_err(|_| {
            DatasetError::InvalidConfig {
                name: "scores length",
                value: format!(
                    "expected {} benchmarks × {} machines",
                    benchmarks.len(),
                    machines.len()
                ),
            }
        })?;
        Ok(PerfDatabase {
            benchmarks,
            machines,
            scores,
        })
    }

    /// Number of benchmarks (rows).
    pub fn n_benchmarks(&self) -> usize {
        self.benchmarks.len()
    }

    /// Number of machines (columns).
    pub fn n_machines(&self) -> usize {
        self.machines.len()
    }

    /// Benchmark metadata.
    pub fn benchmarks(&self) -> &[Benchmark] {
        &self.benchmarks
    }

    /// Machine metadata.
    pub fn machines(&self) -> &[Machine] {
        &self.machines
    }

    /// The full `benchmarks × machines` score matrix.
    pub fn score_matrix(&self) -> &Matrix {
        &self.scores
    }

    /// Score of benchmark `b` on machine `m`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of bounds.
    pub fn score(&self, b: usize, m: usize) -> f64 {
        assert!(b < self.benchmarks.len(), "benchmark index out of bounds");
        assert!(m < self.machines.len(), "machine index out of bounds");
        self.scores[(b, m)]
    }

    /// All scores of one benchmark across machines (one matrix row),
    /// borrowed.
    ///
    /// # Panics
    ///
    /// Panics if `b` is out of bounds.
    pub fn benchmark_row(&self, b: usize) -> &[f64] {
        assert!(b < self.benchmarks.len(), "benchmark index out of bounds");
        self.scores.row(b)
    }

    /// All scores of one machine across benchmarks (one matrix column), as
    /// a zero-copy strided view.
    ///
    /// # Panics
    ///
    /// Panics if `m` is out of bounds.
    pub fn machine_column(&self, m: usize) -> VecView<'_> {
        assert!(m < self.machines.len(), "machine index out of bounds");
        self.scores.col_view(m)
    }

    /// Looks up a benchmark index by name.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::NotFound`] if no benchmark has that name.
    pub fn benchmark_index(&self, name: &str) -> Result<usize> {
        self.benchmarks
            .iter()
            .position(|b| b.name == name)
            .ok_or_else(|| DatasetError::NotFound {
                what: "benchmark",
                name: name.to_owned(),
            })
    }

    /// Indices of all machines belonging to `family`.
    pub fn machines_in_family(&self, family: ProcessorFamily) -> Vec<usize> {
        self.machines
            .iter()
            .enumerate()
            .filter(|(_, m)| m.family == family)
            .map(|(i, _)| i)
            .collect()
    }

    /// Indices of all machines released in `year`.
    pub fn machines_in_year(&self, year: u16) -> Vec<usize> {
        self.machines
            .iter()
            .enumerate()
            .filter(|(_, m)| m.year == year)
            .map(|(i, _)| i)
            .collect()
    }

    /// Indices of all machines released strictly before `year`.
    pub fn machines_before_year(&self, year: u16) -> Vec<usize> {
        self.machines
            .iter()
            .enumerate()
            .filter(|(_, m)| m.year < year)
            .map(|(i, _)| i)
            .collect()
    }

    /// Exports the score table as CSV: header row of machine names, then
    /// one row per benchmark.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("benchmark");
        for m in &self.machines {
            out.push(',');
            out.push_str(&format!("{} {}", m.family, m.name).replace(',', ";"));
        }
        out.push('\n');
        for (bi, b) in self.benchmarks.iter().enumerate() {
            out.push_str(&b.name);
            for mi in 0..self.machines.len() {
                out.push_str(&format!(",{:.4}", self.score(bi, mi)));
            }
            out.push('\n');
        }
        out
    }
}

impl DatabaseView for PerfDatabase {
    fn n_benchmarks(&self) -> usize {
        PerfDatabase::n_benchmarks(self)
    }

    fn n_machines(&self) -> usize {
        PerfDatabase::n_machines(self)
    }

    fn benchmarks(&self) -> &[Benchmark] {
        PerfDatabase::benchmarks(self)
    }

    fn machines(&self) -> &[Machine] {
        PerfDatabase::machines(self)
    }

    fn score(&self, b: usize, m: usize) -> f64 {
        PerfDatabase::score(self, b, m)
    }

    fn machine_column(&self, m: usize) -> VecView<'_> {
        PerfDatabase::machine_column(self, m)
    }

    fn benchmark_row_segments(&self, b: usize) -> Vec<RowSegment<'_>> {
        vec![RowSegment {
            start: 0,
            scores: self.benchmark_row(b),
        }]
    }

    fn gather(&self, benchmarks: &[usize], machines: &[usize]) -> Matrix {
        // One-pass scattered gather over the dense matrix.
        self.scores.select(benchmarks, machines)
    }

    fn reader(&self) -> DbReader<'_> {
        DbReader::Dense(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate, DatasetConfig};

    fn db() -> PerfDatabase {
        generate(&DatasetConfig::default()).unwrap()
    }

    #[test]
    fn dimensions() {
        let db = db();
        assert_eq!(db.n_benchmarks(), 29);
        assert_eq!(db.n_machines(), 117);
        assert_eq!(db.benchmark_row(0).len(), 117);
        assert_eq!(db.machine_column(0).len(), 29);
    }

    #[test]
    fn row_column_consistency() {
        let db = db();
        assert_eq!(db.benchmark_row(3)[5], db.score(3, 5));
        assert_eq!(db.machine_column(5)[3], db.score(3, 5));
    }

    #[test]
    fn score_matrix_and_views_agree() {
        let db = db();
        let m = db.score_matrix();
        assert_eq!(m.shape(), (29, 117));
        assert_eq!(m[(3, 5)], db.score(3, 5));
        assert_eq!(db.machine_column(5).to_vec(), m.col(5));
        assert_eq!(db.benchmark_row(3), m.row(3));
    }

    #[test]
    fn lookup_by_name() {
        let db = db();
        let idx = db.benchmark_index("libquantum").unwrap();
        assert_eq!(db.benchmarks()[idx].name, "libquantum");
        assert!(db.benchmark_index("not-a-benchmark").is_err());
    }

    #[test]
    fn family_and_year_filters() {
        let db = db();
        let xeons = db.machines_in_family(ProcessorFamily::Xeon);
        assert_eq!(xeons.len(), 39); // 13 nicknames × 3
        let y2009 = db.machines_in_year(2009);
        assert!(!y2009.is_empty());
        let before = db.machines_before_year(2009);
        assert_eq!(y2009.len() + before.len(), 117); // catalog max year is 2009
    }

    #[test]
    fn csv_shape() {
        let db = db();
        let csv = db.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 30); // header + 29 benchmarks
        assert_eq!(lines[0].split(',').count(), 118); // name + 117 machines
    }

    #[test]
    fn new_validates() {
        let db = db();
        let bad = PerfDatabase::new(
            db.benchmarks().to_vec(),
            db.machines().to_vec(),
            vec![1.0; 5],
        );
        assert!(bad.is_err());
        let neg = PerfDatabase::new(
            db.benchmarks().to_vec(),
            db.machines().to_vec(),
            vec![-1.0; 29 * 117],
        );
        assert!(neg.is_err());
    }

    #[test]
    fn new_rejects_empty_benchmarks() {
        let db = db();
        // A 0 × 117 database would pass the old length check (0 scores for
        // a zero-area matrix) and panic later in every accessor; it must be
        // an explicit error instead.
        assert_eq!(
            PerfDatabase::new(Vec::new(), db.machines().to_vec(), Vec::new()),
            Err(DatasetError::Empty { what: "benchmarks" })
        );
    }

    #[test]
    fn new_rejects_empty_machines() {
        let db = db();
        assert_eq!(
            PerfDatabase::new(db.benchmarks().to_vec(), Vec::new(), Vec::new()),
            Err(DatasetError::Empty { what: "machines" })
        );
    }

    #[test]
    fn new_rejects_zero_area_matrix() {
        // Both dimensions empty: the zero-area matrix case. The benchmarks
        // check fires first; the point is that it cannot construct.
        assert_eq!(
            PerfDatabase::new(Vec::new(), Vec::new(), Vec::new()),
            Err(DatasetError::Empty { what: "benchmarks" })
        );
        // Non-empty scores with empty dimensions must not sneak through
        // either.
        let db = db();
        assert!(PerfDatabase::new(Vec::new(), db.machines().to_vec(), vec![1.0; 5]).is_err());
    }

    #[test]
    fn trait_and_inherent_accessors_agree() {
        let db = db();
        let view: &dyn DatabaseView = &db;
        assert_eq!(view.n_benchmarks(), db.n_benchmarks());
        assert_eq!(view.n_machines(), db.n_machines());
        assert_eq!(view.score(3, 5).to_bits(), db.score(3, 5).to_bits());
        assert_eq!(
            view.machine_column(5).to_vec(),
            db.machine_column(5).to_vec()
        );
        let segments = view.benchmark_row_segments(3);
        assert_eq!(segments.len(), 1);
        assert_eq!(segments[0].start, 0);
        assert_eq!(segments[0].scores, db.benchmark_row(3));
        assert_eq!(view.benchmark_row_vec(3), db.benchmark_row(3));
        let sub = view.gather(&[0, 3], &[5, 2, 116]);
        assert_eq!(sub.shape(), (2, 3));
        assert_eq!(sub[(1, 2)].to_bits(), db.score(3, 116).to_bits());
        assert_eq!(view.n_shards(), 1);
    }
}

//! Synthesis of *applications of interest* that are not part of the suite.
//!
//! The paper's leave-one-out evaluation treats each benchmark as the
//! application of interest. Real deployments, however, care about programs
//! outside the suite — a phone company's codec, an ISP's proxy. This module
//! generates such workloads from domain-flavoured priors so the examples
//! and application-layer tests can exercise the full pipeline, including an
//! oracle (the performance model itself) to grade predictions against.

use datatrans_rng::rngs::StdRng;
use datatrans_rng::{Rng, SeedableRng};

use crate::benchmark::{spec_cpu2006, Benchmark, Suite};
use crate::characteristics::WorkloadCharacteristics;

/// Domain flavour of a synthesized application of interest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadProfile {
    /// Control-heavy integer code: interpreters, protocol parsing.
    ServerInteger,
    /// Dense numeric kernels: simulation, signal processing.
    Scientific,
    /// Large-footprint streaming: analytics scans, media transcoding.
    Streaming,
    /// Pointer-chasing, latency-bound: in-memory databases, graphs.
    PointerChasing,
    /// Embedded/control code with small working sets.
    Embedded,
}

impl WorkloadProfile {
    /// All profiles, for enumeration in examples and tests.
    pub const ALL: [WorkloadProfile; 5] = [
        WorkloadProfile::ServerInteger,
        WorkloadProfile::Scientific,
        WorkloadProfile::Streaming,
        WorkloadProfile::PointerChasing,
        WorkloadProfile::Embedded,
    ];
}

impl std::fmt::Display for WorkloadProfile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            WorkloadProfile::ServerInteger => "server-integer",
            WorkloadProfile::Scientific => "scientific",
            WorkloadProfile::Streaming => "streaming",
            WorkloadProfile::PointerChasing => "pointer-chasing",
            WorkloadProfile::Embedded => "embedded",
        };
        write!(f, "{name}")
    }
}

fn jitter(rng: &mut StdRng, base: f64, spread: f64, lo: f64, hi: f64) -> f64 {
    (base * (1.0 + rng.gen_range(-spread..spread))).clamp(lo, hi)
}

/// Synthesizes an application of interest with the given domain flavour.
///
/// Deterministic given `(profile, seed)`. The result always satisfies
/// [`WorkloadCharacteristics::is_plausible`].
///
/// # Example
///
/// ```
/// use datatrans_dataset::workload_synth::{synthesize, WorkloadProfile};
///
/// let app = synthesize(WorkloadProfile::Streaming, 42);
/// assert!(app.stream_fraction > 0.3);
/// assert!(app.is_plausible());
/// ```
pub fn synthesize(profile: WorkloadProfile, seed: u64) -> WorkloadCharacteristics {
    let mut rng = StdRng::seed_from_u64(seed ^ (profile as u64).wrapping_mul(0x9E37_79B9));
    let w = match profile {
        WorkloadProfile::ServerInteger => WorkloadCharacteristics {
            instr_e9: jitter(&mut rng, 1200.0, 0.4, 100.0, 5000.0),
            ilp: jitter(&mut rng, 1.8, 0.3, 1.0, 3.0),
            fp_fraction: jitter(&mut rng, 0.02, 0.9, 0.0, 0.1),
            mem_fraction: jitter(&mut rng, 0.33, 0.2, 0.2, 0.45),
            branch_fraction: jitter(&mut rng, 0.20, 0.2, 0.1, 0.3),
            mispredict_rate: jitter(&mut rng, 0.08, 0.4, 0.02, 0.15),
            working_set_mib: jitter(&mut rng, 30.0, 0.8, 1.0, 200.0),
            stream_fraction: jitter(&mut rng, 0.07, 0.8, 0.0, 0.25),
            locality_alpha: jitter(&mut rng, 0.42, 0.3, 0.2, 0.8),
            bandwidth_demand: jitter(&mut rng, 1.5, 0.5, 0.1, 5.0),
            mlp: jitter(&mut rng, 1.4, 0.3, 1.0, 2.5),
            regularity: jitter(&mut rng, 0.18, 0.6, 0.0, 0.5),
        },
        WorkloadProfile::Scientific => WorkloadCharacteristics {
            instr_e9: jitter(&mut rng, 2800.0, 0.4, 500.0, 8000.0),
            ilp: jitter(&mut rng, 3.4, 0.4, 1.5, 6.5),
            fp_fraction: jitter(&mut rng, 0.42, 0.2, 0.25, 0.55),
            mem_fraction: jitter(&mut rng, 0.30, 0.2, 0.2, 0.42),
            branch_fraction: jitter(&mut rng, 0.06, 0.4, 0.02, 0.12),
            mispredict_rate: jitter(&mut rng, 0.012, 0.5, 0.003, 0.04),
            working_set_mib: jitter(&mut rng, 50.0, 0.9, 1.0, 400.0),
            stream_fraction: jitter(&mut rng, 0.20, 0.8, 0.0, 0.5),
            locality_alpha: jitter(&mut rng, 0.55, 0.3, 0.3, 0.9),
            bandwidth_demand: jitter(&mut rng, 3.5, 0.7, 0.3, 9.0),
            mlp: jitter(&mut rng, 1.9, 0.4, 1.0, 3.0),
            regularity: jitter(&mut rng, 0.72, 0.3, 0.3, 1.0),
        },
        WorkloadProfile::Streaming => WorkloadCharacteristics {
            instr_e9: jitter(&mut rng, 1700.0, 0.4, 300.0, 5000.0),
            ilp: jitter(&mut rng, 2.7, 0.3, 1.5, 4.0),
            fp_fraction: jitter(&mut rng, 0.2, 0.9, 0.0, 0.45),
            mem_fraction: jitter(&mut rng, 0.38, 0.15, 0.25, 0.48),
            branch_fraction: jitter(&mut rng, 0.08, 0.5, 0.02, 0.18),
            mispredict_rate: jitter(&mut rng, 0.012, 0.5, 0.003, 0.05),
            working_set_mib: jitter(&mut rng, 200.0, 0.8, 32.0, 800.0),
            stream_fraction: jitter(&mut rng, 0.65, 0.25, 0.35, 0.95),
            locality_alpha: jitter(&mut rng, 0.65, 0.2, 0.4, 0.9),
            bandwidth_demand: jitter(&mut rng, 9.0, 0.4, 3.0, 16.0),
            mlp: jitter(&mut rng, 2.8, 0.3, 1.5, 4.0),
            regularity: jitter(&mut rng, 0.8, 0.2, 0.4, 1.0),
        },
        WorkloadProfile::PointerChasing => WorkloadCharacteristics {
            instr_e9: jitter(&mut rng, 700.0, 0.5, 100.0, 3000.0),
            ilp: jitter(&mut rng, 1.3, 0.2, 1.0, 2.0),
            fp_fraction: jitter(&mut rng, 0.01, 0.9, 0.0, 0.05),
            mem_fraction: jitter(&mut rng, 0.40, 0.12, 0.3, 0.48),
            branch_fraction: jitter(&mut rng, 0.18, 0.25, 0.1, 0.28),
            mispredict_rate: jitter(&mut rng, 0.07, 0.4, 0.02, 0.15),
            working_set_mib: jitter(&mut rng, 250.0, 0.8, 32.0, 900.0),
            stream_fraction: jitter(&mut rng, 0.15, 0.7, 0.0, 0.35),
            locality_alpha: jitter(&mut rng, 0.35, 0.3, 0.15, 0.6),
            bandwidth_demand: jitter(&mut rng, 2.5, 0.5, 0.5, 6.0),
            mlp: jitter(&mut rng, 1.7, 0.4, 1.0, 3.0),
            regularity: jitter(&mut rng, 0.10, 0.8, 0.0, 0.3),
        },
        WorkloadProfile::Embedded => WorkloadCharacteristics {
            instr_e9: jitter(&mut rng, 400.0, 0.6, 20.0, 1500.0),
            ilp: jitter(&mut rng, 2.2, 0.4, 1.0, 4.5),
            fp_fraction: jitter(&mut rng, 0.08, 0.9, 0.0, 0.3),
            mem_fraction: jitter(&mut rng, 0.28, 0.25, 0.15, 0.4),
            branch_fraction: jitter(&mut rng, 0.16, 0.3, 0.08, 0.25),
            mispredict_rate: jitter(&mut rng, 0.045, 0.5, 0.01, 0.12),
            working_set_mib: jitter(&mut rng, 2.0, 0.9, 0.1, 16.0),
            stream_fraction: jitter(&mut rng, 0.06, 0.9, 0.0, 0.3),
            locality_alpha: jitter(&mut rng, 0.55, 0.3, 0.3, 0.9),
            bandwidth_demand: jitter(&mut rng, 0.8, 0.7, 0.05, 3.0),
            mlp: jitter(&mut rng, 1.3, 0.3, 1.0, 2.2),
            regularity: jitter(&mut rng, 0.45, 0.5, 0.1, 0.9),
        },
    };
    debug_assert!(w.is_plausible());
    w
}

/// Synthesizes an `n`-benchmark suite for scale-generated catalogs.
///
/// The 29 SPEC CPU2006 benchmarks come first (truncated if `n < 29`), so
/// every scale catalog is a superset of the paper's suite; the remainder
/// are deterministic domain-flavoured synthetics cycling through
/// [`WorkloadProfile::ALL`], named `synth-{profile}-{index}`. Deterministic
/// given `(n, seed)`.
pub fn synthesize_suite(n: usize, seed: u64) -> Vec<Benchmark> {
    let mut suite = spec_cpu2006();
    suite.truncate(n);
    for k in suite.len()..n {
        let profile = WorkloadProfile::ALL[k % WorkloadProfile::ALL.len()];
        let characteristics = synthesize(
            profile,
            seed ^ (k as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F),
        );
        suite.push(Benchmark {
            name: format!("synth-{profile}-{k:04}"),
            suite: if characteristics.fp_fraction > 0.15 {
                Suite::Fp
            } else {
                Suite::Int
            },
            domain: format!("synthetic {profile} workload"),
            characteristics,
        });
    }
    suite
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_profiles_plausible_across_seeds() {
        for profile in WorkloadProfile::ALL {
            for seed in 0..50 {
                let w = synthesize(profile, seed);
                assert!(w.is_plausible(), "{profile} seed {seed}");
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        for profile in WorkloadProfile::ALL {
            assert_eq!(synthesize(profile, 9), synthesize(profile, 9));
        }
        assert_ne!(
            synthesize(WorkloadProfile::Embedded, 1),
            synthesize(WorkloadProfile::Embedded, 2)
        );
    }

    #[test]
    fn profiles_have_distinct_flavours() {
        let server = synthesize(WorkloadProfile::ServerInteger, 3);
        let sci = synthesize(WorkloadProfile::Scientific, 3);
        let stream = synthesize(WorkloadProfile::Streaming, 3);
        let ptr = synthesize(WorkloadProfile::PointerChasing, 3);
        assert!(server.fp_fraction < 0.15);
        assert!(sci.fp_fraction > 0.2);
        assert!(stream.stream_fraction > ptr.stream_fraction);
        assert!(ptr.ilp < sci.ilp);
    }

    #[test]
    fn synthesized_suite_extends_the_spec_suite() {
        let suite = synthesize_suite(40, 9);
        assert_eq!(suite.len(), 40);
        let spec = crate::benchmark::spec_cpu2006();
        assert_eq!(&suite[..29], &spec[..]);
        for (k, b) in suite.iter().enumerate().skip(29) {
            assert!(b.name.starts_with("synth-"), "{}", b.name);
            assert!(b.characteristics.is_plausible(), "bench {k}");
        }
        // Truncation keeps a prefix of the real suite.
        let small = synthesize_suite(5, 9);
        assert_eq!(&small[..], &spec[..5]);
        // Deterministic; seed only affects the synthetic tail.
        assert_eq!(synthesize_suite(40, 9), synthesize_suite(40, 9));
        assert_ne!(synthesize_suite(40, 9), synthesize_suite(40, 10));
        assert_eq!(synthesize_suite(29, 1), synthesize_suite(29, 2));
    }

    #[test]
    fn display_names() {
        assert_eq!(WorkloadProfile::Streaming.to_string(), "streaming");
        assert_eq!(WorkloadProfile::ALL.len(), 5);
    }
}

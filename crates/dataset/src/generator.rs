//! Deterministic assembly of the full performance database.

use datatrans_rng::rngs::StdRng;
use datatrans_rng::{Rng, SeedableRng};

use crate::benchmark::{spec_cpu2006, Benchmark};
use crate::catalog::{build_machines, build_scaled_machines};
use crate::database::{MachineIngest, PerfDatabase};
use crate::machine::Machine;
use crate::perf_model::spec_ratio;
use crate::view::DatabaseView;
use crate::{DatasetError, Result};

/// Configuration of the dataset generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DatasetConfig {
    /// Master seed. Everything — machine jitter, measurement noise — is a
    /// pure function of this value.
    pub seed: u64,
    /// Standard deviation of multiplicative lognormal measurement noise on
    /// each score. SPEC run-to-run variation is on the order of 1–2%.
    pub noise_sigma: f64,
}

impl Default for DatasetConfig {
    fn default() -> Self {
        DatasetConfig {
            seed: 0xDA7A_72A5,
            noise_sigma: 0.015,
        }
    }
}

impl DatasetConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::InvalidConfig`] if `noise_sigma` is negative
    /// or not finite.
    pub fn validate(&self) -> Result<()> {
        if !self.noise_sigma.is_finite() || !(0.0..=0.5).contains(&self.noise_sigma) {
            return Err(DatasetError::InvalidConfig {
                name: "noise_sigma",
                value: self.noise_sigma.to_string(),
            });
        }
        Ok(())
    }
}

/// Standard normal sample via Box–Muller.
fn gaussian(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Generates the complete 29 × 117 performance database.
///
/// Pipeline: build the Table 1 machine catalog (with per-instance
/// variation), evaluate the CPI-stack model for every (benchmark, machine)
/// pair, then apply multiplicative lognormal measurement noise.
/// Deterministic given `config.seed`.
///
/// # Errors
///
/// Returns [`DatasetError::InvalidConfig`] on invalid configuration.
///
/// # Example
///
/// ```
/// use datatrans_dataset::generator::{generate, DatasetConfig};
///
/// # fn main() -> Result<(), datatrans_dataset::DatasetError> {
/// let db = generate(&DatasetConfig { seed: 7, noise_sigma: 0.01 })?;
/// assert_eq!(db.n_benchmarks() * db.n_machines(), 29 * 117);
/// # Ok(())
/// # }
/// ```
pub fn generate(config: &DatasetConfig) -> Result<PerfDatabase> {
    config.validate()?;
    let benchmarks = spec_cpu2006();
    let machines = build_machines(config.seed);
    score_catalog(benchmarks, machines, config.seed, config.noise_sigma)
}

/// Evaluates the CPI-stack model over `benchmarks × machines` and applies
/// multiplicative lognormal measurement noise — the shared scoring tail of
/// [`generate`] and [`generate_scaled`].
fn score_catalog(
    benchmarks: Vec<Benchmark>,
    machines: Vec<Machine>,
    seed: u64,
    noise_sigma: f64,
) -> Result<PerfDatabase> {
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0xA24B_AED4_963E_E407));
    let mut scores = Vec::with_capacity(benchmarks.len() * machines.len());
    for b in &benchmarks {
        for m in &machines {
            let clean = spec_ratio(&m.micro, &b.characteristics);
            let noisy = clean * (noise_sigma * gaussian(&mut rng)).exp();
            scores.push(noisy);
        }
    }
    PerfDatabase::new(benchmarks, machines, scores)
}

/// Configuration of the scale-test dataset generator.
///
/// Where [`DatasetConfig`] reproduces the paper's fixed 29 × 117 matrix,
/// `ScaleConfig` synthesizes catalogs orders of magnitude larger —
/// 1k–10k machines — for the sharded database's scale tests and benches.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScaleConfig {
    /// Master seed; the whole catalog is a pure function of it.
    pub seed: u64,
    /// Multiplicative lognormal measurement-noise sigma (as in
    /// [`DatasetConfig::noise_sigma`]).
    pub noise_sigma: f64,
    /// Number of machines (columns). The 39 nickname templates are
    /// expanded round-robin, keeping each processor family's machines
    /// contiguous in column order.
    pub n_machines: usize,
    /// Number of benchmarks (rows): the 29 SPEC CPU2006 benchmarks first,
    /// then deterministic synthetics
    /// ([`crate::workload_synth::synthesize_suite`]).
    pub n_benchmarks: usize,
}

impl Default for ScaleConfig {
    fn default() -> Self {
        ScaleConfig {
            seed: 0x5CA1_AB1E,
            noise_sigma: 0.015,
            n_machines: 1000,
            n_benchmarks: 29,
        }
    }
}

impl ScaleConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::InvalidConfig`] if `noise_sigma` is outside
    /// `[0, 0.5]` or either dimension is zero.
    pub fn validate(&self) -> Result<()> {
        if !self.noise_sigma.is_finite() || !(0.0..=0.5).contains(&self.noise_sigma) {
            return Err(DatasetError::InvalidConfig {
                name: "noise_sigma",
                value: self.noise_sigma.to_string(),
            });
        }
        if self.n_machines == 0 {
            return Err(DatasetError::InvalidConfig {
                name: "n_machines",
                value: "0".into(),
            });
        }
        if self.n_benchmarks == 0 {
            return Err(DatasetError::InvalidConfig {
                name: "n_benchmarks",
                value: "0".into(),
            });
        }
        Ok(())
    }
}

/// Generates a scale-test performance database of
/// `n_benchmarks × n_machines`.
///
/// Same pipeline as [`generate`] — catalog, CPI-stack model, lognormal
/// noise — over the scale catalog of
/// [`build_scaled_machines`] and the extended suite of
/// [`crate::workload_synth::synthesize_suite`]. Deterministic given the
/// config; the committed golden digest in `tests/determinism.rs` pins the
/// 1k-machine catalog against generator drift.
///
/// # Errors
///
/// Returns [`DatasetError::InvalidConfig`] on invalid configuration.
///
/// # Example
///
/// ```
/// use datatrans_dataset::generator::{generate_scaled, ScaleConfig};
///
/// # fn main() -> Result<(), datatrans_dataset::DatasetError> {
/// let db = generate_scaled(&ScaleConfig { n_machines: 200, ..ScaleConfig::default() })?;
/// assert_eq!(db.n_machines(), 200);
/// assert_eq!(db.n_benchmarks(), 29);
/// # Ok(())
/// # }
/// ```
pub fn generate_scaled(config: &ScaleConfig) -> Result<PerfDatabase> {
    config.validate()?;
    let benchmarks = crate::workload_synth::synthesize_suite(config.n_benchmarks, config.seed);
    let machines = build_scaled_machines(config.seed, config.n_machines);
    score_catalog(benchmarks, machines, config.seed, config.noise_sigma)
}

/// Synthesizes a streaming-ingest batch of `n_machines` scored machines
/// against an existing benchmark suite — the feed for
/// [`PerfDatabase::push_machines`] and
/// [`crate::sharded::ShardedPerfDatabase::push_machines`].
///
/// Same scoring pipeline as the generators (scale catalog templates,
/// CPI-stack model, multiplicative lognormal noise), but each entry's
/// scores come from an RNG seeded by `(seed, entry index)`, so entry `i` is
/// **independent of how the batch is split**: pushing entries one at a
/// time, in chunks, or all at once yields bitwise-identical catalogs.
///
/// # Errors
///
/// Returns [`DatasetError::Empty`] if `benchmarks` is empty, or
/// [`DatasetError::InvalidConfig`] if `noise_sigma` is outside `[0, 0.5]`.
///
/// # Example
///
/// ```
/// use datatrans_dataset::generator::{generate, synthesize_ingest, DatasetConfig};
///
/// # fn main() -> Result<(), datatrans_dataset::DatasetError> {
/// let mut db = generate(&DatasetConfig::default())?;
/// let batch = synthesize_ingest(7, db.benchmarks(), 4, 0.015)?;
/// db.push_machines(&batch)?;
/// assert_eq!(db.n_machines(), 121);
/// assert_eq!(db.catalog_version(), 1);
/// # Ok(())
/// # }
/// ```
pub fn synthesize_ingest(
    seed: u64,
    benchmarks: &[Benchmark],
    n_machines: usize,
    noise_sigma: f64,
) -> Result<Vec<MachineIngest>> {
    if !noise_sigma.is_finite() || !(0.0..=0.5).contains(&noise_sigma) {
        return Err(DatasetError::InvalidConfig {
            name: "noise_sigma",
            value: noise_sigma.to_string(),
        });
    }
    if benchmarks.is_empty() {
        return Err(DatasetError::Empty { what: "benchmarks" });
    }
    let machines = build_scaled_machines(seed ^ 0x1A6E_57ED, n_machines);
    Ok(machines
        .into_iter()
        .enumerate()
        .map(|(i, machine)| {
            let mut rng = StdRng::seed_from_u64(
                seed.wrapping_mul(0xA24B_AED4_963E_E407)
                    .wrapping_add(i as u64),
            );
            let scores = benchmarks
                .iter()
                .map(|b| {
                    spec_ratio(&machine.micro, &b.characteristics)
                        * (noise_sigma * gaussian(&mut rng)).exp()
                })
                .collect();
            MachineIngest { machine, scores }
        })
        .collect())
}

/// Measurement-noise model for robustness studies.
///
/// Models run-to-run variation of a benchmark score as multiplicative
/// lognormal noise: a measurement of a clean score `s` is
/// `s * exp(sigma * N(0, 1))`. Every `(benchmark, machine)` cell owns its
/// own RNG stream derived from `(seed, benchmark, machine)` alone — like
/// [`synthesize_ingest`]'s per-entry streams, the draws are **independent
/// of how the catalog is split**: measuring a subset of machines, a single
/// cell, or the whole matrix yields bitwise-identical values for the cells
/// in common. With `sigma = 0` no RNG is consulted at all and every
/// measurement is bitwise-identical to the clean score.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseConfig {
    /// Master seed; every cell's measurement stream is a pure function of
    /// `(seed, benchmark, machine)`.
    pub seed: u64,
    /// Standard deviation of the multiplicative lognormal noise, in
    /// `[0, 0.5]`. SPEC run-to-run variation is on the order of 1–2%.
    pub sigma: f64,
    /// Measurements synthesized per cell (`>= 1`).
    pub repeats: usize,
}

impl NoiseConfig {
    /// The noiseless model: `sigma = 0`, one measurement per cell.
    /// Measuring with it reproduces the clean scores bit for bit.
    pub fn clean() -> Self {
        NoiseConfig {
            seed: 0,
            sigma: 0.0,
            repeats: 1,
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::InvalidConfig`] if `sigma` is outside
    /// `[0, 0.5]` or `repeats` is zero.
    pub fn validate(&self) -> Result<()> {
        if !self.sigma.is_finite() || !(0.0..=0.5).contains(&self.sigma) {
            return Err(DatasetError::InvalidConfig {
                name: "sigma",
                value: self.sigma.to_string(),
            });
        }
        if self.repeats == 0 {
            return Err(DatasetError::InvalidConfig {
                name: "repeats",
                value: "0".into(),
            });
        }
        Ok(())
    }

    /// Seed of cell `(b, m)`'s measurement stream — a pure function of
    /// `(self.seed, b, m)`, which is what makes the model split-invariant.
    fn cell_seed(&self, b: usize, m: usize) -> u64 {
        self.seed
            .wrapping_mul(0xA24B_AED4_963E_E407)
            .wrapping_add((b as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add((m as u64 + 1).wrapping_mul(0xD1B5_4A32_D192_ED03))
    }

    /// Synthesizes `repeats` measurements of cell `(b, m)` whose clean
    /// score is `clean`. With `sigma = 0` the clean score is repeated
    /// bitwise, with no RNG draws.
    pub fn measure(&self, clean: f64, b: usize, m: usize) -> Vec<f64> {
        if self.sigma == 0.0 {
            return vec![clean; self.repeats];
        }
        let mut rng = StdRng::seed_from_u64(self.cell_seed(b, m));
        (0..self.repeats)
            .map(|_| clean * (self.sigma * gaussian(&mut rng)).exp())
            .collect()
    }

    /// A single perturbed measurement of cell `(b, m)`: the first draw of
    /// the cell's stream, or `clean` itself bitwise when `sigma = 0`.
    pub fn perturb(&self, clean: f64, b: usize, m: usize) -> f64 {
        if self.sigma == 0.0 {
            return clean;
        }
        let mut rng = StdRng::seed_from_u64(self.cell_seed(b, m));
        clean * (self.sigma * gaussian(&mut rng)).exp()
    }
}

/// Synthesizes repeated measurements of benchmark row `app` on each of
/// `machines`, one `Vec` of [`NoiseConfig::repeats`] measurements per
/// machine in input order.
///
/// Split-invariant: the measurements of a machine depend only on
/// `(noise.seed, app, machine)`, never on which other machines are in the
/// slice.
///
/// # Errors
///
/// Returns [`DatasetError::InvalidConfig`] on an invalid noise model, or
/// [`DatasetError::IndexOutOfBounds`] if `app` or any machine index is out
/// of range.
pub fn synthesize_measurements<D: DatabaseView + ?Sized>(
    db: &D,
    app: usize,
    machines: &[usize],
    noise: &NoiseConfig,
) -> Result<Vec<Vec<f64>>> {
    noise.validate()?;
    if app >= db.n_benchmarks() {
        return Err(DatasetError::IndexOutOfBounds {
            what: "benchmark",
            index: app,
            bound: db.n_benchmarks(),
        });
    }
    let bound = db.n_machines();
    machines
        .iter()
        .map(|&m| {
            if m >= bound {
                return Err(DatasetError::IndexOutOfBounds {
                    what: "machine",
                    index: m,
                    bound,
                });
            }
            Ok(noise.measure(db.score(app, m), app, m))
        })
        .collect()
}

/// Applies one perturbed measurement per cell to a whole catalog,
/// returning a new database over the same benchmarks and machines.
///
/// With `noise.sigma = 0` the perturbed catalog is bitwise-identical to
/// the input (the robustness baseline); otherwise cell `(b, m)` is
/// replaced by the first draw of its measurement stream.
///
/// # Errors
///
/// Returns [`DatasetError::InvalidConfig`] on an invalid noise model.
pub fn perturb_database(db: &PerfDatabase, noise: &NoiseConfig) -> Result<PerfDatabase> {
    noise.validate()?;
    let mut scores = Vec::with_capacity(db.n_benchmarks() * db.n_machines());
    for b in 0..db.n_benchmarks() {
        for m in 0..db.n_machines() {
            scores.push(noise.perturb(db.score(b, m), b, m));
        }
    }
    PerfDatabase::new(db.benchmarks().to_vec(), db.machines().to_vec(), scores)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let a = generate(&DatasetConfig::default()).unwrap();
        let b = generate(&DatasetConfig::default()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&DatasetConfig {
            seed: 1,
            noise_sigma: 0.015,
        })
        .unwrap();
        let b = generate(&DatasetConfig {
            seed: 2,
            noise_sigma: 0.015,
        })
        .unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn zero_noise_matches_model_exactly() {
        let db = generate(&DatasetConfig {
            seed: 5,
            noise_sigma: 0.0,
        })
        .unwrap();
        let b = &db.benchmarks()[0];
        let m = &db.machines()[0];
        let expected = spec_ratio(&m.micro, &b.characteristics);
        assert!((db.score(0, 0) - expected).abs() < 1e-12);
    }

    #[test]
    fn noise_is_small_relative_perturbation() {
        let clean = generate(&DatasetConfig {
            seed: 5,
            noise_sigma: 0.0,
        })
        .unwrap();
        let noisy = generate(&DatasetConfig {
            seed: 5,
            noise_sigma: 0.015,
        })
        .unwrap();
        for b in 0..clean.n_benchmarks() {
            for m in 0..clean.n_machines() {
                let rel = (noisy.score(b, m) / clean.score(b, m)).ln().abs();
                assert!(rel < 0.1, "noise too large: {rel}");
            }
        }
    }

    #[test]
    fn validates_config() {
        assert!(generate(&DatasetConfig {
            seed: 1,
            noise_sigma: -0.1
        })
        .is_err());
        assert!(generate(&DatasetConfig {
            seed: 1,
            noise_sigma: 0.9
        })
        .is_err());
        assert!(generate(&DatasetConfig {
            seed: 1,
            noise_sigma: f64::NAN
        })
        .is_err());
    }

    #[test]
    fn scaled_generation_is_deterministic_and_valid() {
        let config = ScaleConfig {
            n_machines: 150,
            n_benchmarks: 33,
            ..ScaleConfig::default()
        };
        let a = generate_scaled(&config).unwrap();
        let b = generate_scaled(&config).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.n_machines(), 150);
        assert_eq!(a.n_benchmarks(), 33);
        for bench in 0..a.n_benchmarks() {
            for m in 0..a.n_machines() {
                let s = a.score(bench, m);
                assert!(s.is_finite() && s > 0.0);
            }
        }
    }

    #[test]
    fn scaled_generation_validates_config() {
        assert!(generate_scaled(&ScaleConfig {
            n_machines: 0,
            ..ScaleConfig::default()
        })
        .is_err());
        assert!(generate_scaled(&ScaleConfig {
            n_benchmarks: 0,
            ..ScaleConfig::default()
        })
        .is_err());
        assert!(generate_scaled(&ScaleConfig {
            noise_sigma: -1.0,
            ..ScaleConfig::default()
        })
        .is_err());
    }

    #[test]
    fn ingest_entries_are_independent_of_batch_splits() {
        let db = generate(&DatasetConfig::default()).unwrap();
        let whole = synthesize_ingest(9, db.benchmarks(), 6, 0.015).unwrap();
        // Same seed, shorter batch: a prefix must be bitwise-identical.
        let prefix = synthesize_ingest(9, db.benchmarks(), 3, 0.015).unwrap();
        assert_eq!(&whole[..3], &prefix[..]);
        for entry in &whole {
            assert_eq!(entry.scores.len(), 29);
            assert!(entry.scores.iter().all(|s| s.is_finite() && *s > 0.0));
        }
    }

    #[test]
    fn ingest_validates_inputs() {
        let db = generate(&DatasetConfig::default()).unwrap();
        assert!(matches!(
            synthesize_ingest(1, db.benchmarks(), 2, 0.9),
            Err(DatasetError::InvalidConfig {
                name: "noise_sigma",
                ..
            })
        ));
        assert!(matches!(
            synthesize_ingest(1, &[], 2, 0.015),
            Err(DatasetError::Empty { what: "benchmarks" })
        ));
    }

    #[test]
    fn scores_positive_and_finite() {
        let db = generate(&DatasetConfig::default()).unwrap();
        for b in 0..db.n_benchmarks() {
            for m in 0..db.n_machines() {
                let s = db.score(b, m);
                assert!(s.is_finite() && s > 0.0);
            }
        }
    }

    #[test]
    fn zero_sigma_perturbation_is_bitwise_identity() {
        let db = generate(&DatasetConfig::default()).unwrap();
        let noise = NoiseConfig {
            seed: 99,
            sigma: 0.0,
            repeats: 3,
        };
        let perturbed = perturb_database(&db, &noise).unwrap();
        for b in 0..db.n_benchmarks() {
            for m in 0..db.n_machines() {
                assert_eq!(db.score(b, m).to_bits(), perturbed.score(b, m).to_bits());
            }
        }
        // Repeated measurements of a cell are the clean score, bitwise.
        let reps = noise.measure(db.score(3, 7), 3, 7);
        assert_eq!(reps.len(), 3);
        assert!(reps.iter().all(|r| r.to_bits() == db.score(3, 7).to_bits()));
    }

    #[test]
    fn noise_streams_are_split_invariant() {
        let db = generate(&DatasetConfig::default()).unwrap();
        let noise = NoiseConfig {
            seed: 7,
            sigma: 0.05,
            repeats: 4,
        };
        let all: Vec<usize> = (0..db.n_machines()).collect();
        let whole = synthesize_measurements(&db, 2, &all, &noise).unwrap();
        // A subset, in a different order, reproduces the same cells bitwise.
        let subset = [40usize, 3, 99];
        let partial = synthesize_measurements(&db, 2, &subset, &noise).unwrap();
        for (slot, &m) in subset.iter().enumerate() {
            let a: Vec<u64> = whole[m].iter().map(|v| v.to_bits()).collect();
            let b: Vec<u64> = partial[slot].iter().map(|v| v.to_bits()).collect();
            assert_eq!(a, b, "machine {m} diverged between splits");
        }
        // The perturbed catalog's cell equals the first measurement.
        let perturbed = perturb_database(&db, &noise).unwrap();
        assert_eq!(
            perturbed.score(2, 40).to_bits(),
            whole[40][0].to_bits(),
            "perturbation is not the first draw of the cell stream"
        );
    }

    #[test]
    fn noise_perturbation_is_small_and_cellwise() {
        let db = generate(&DatasetConfig::default()).unwrap();
        let noise = NoiseConfig {
            seed: 11,
            sigma: 0.02,
            repeats: 1,
        };
        let perturbed = perturb_database(&db, &noise).unwrap();
        let mut changed = 0;
        for b in 0..db.n_benchmarks() {
            for m in 0..db.n_machines() {
                let rel = (perturbed.score(b, m) / db.score(b, m)).ln().abs();
                assert!(rel < 0.2, "noise too large: {rel}");
                if perturbed.score(b, m) != db.score(b, m) {
                    changed += 1;
                }
            }
        }
        // Essentially every cell moves (a gaussian draw of exactly 0.0 is
        // vanishingly unlikely).
        assert!(changed > db.n_benchmarks() * db.n_machines() / 2);
    }

    #[test]
    fn noise_config_validates() {
        assert!(NoiseConfig::clean().validate().is_ok());
        assert!(NoiseConfig {
            seed: 1,
            sigma: 0.9,
            repeats: 1
        }
        .validate()
        .is_err());
        assert!(NoiseConfig {
            seed: 1,
            sigma: f64::NAN,
            repeats: 1
        }
        .validate()
        .is_err());
        assert!(NoiseConfig {
            seed: 1,
            sigma: 0.01,
            repeats: 0
        }
        .validate()
        .is_err());
        let db = generate(&DatasetConfig::default()).unwrap();
        // Out-of-range rows and machines are typed errors, not panics.
        assert!(matches!(
            synthesize_measurements(&db, 999, &[0], &NoiseConfig::clean()),
            Err(DatasetError::IndexOutOfBounds {
                what: "benchmark",
                ..
            })
        ));
        assert!(matches!(
            synthesize_measurements(&db, 0, &[db.n_machines()], &NoiseConfig::clean()),
            Err(DatasetError::IndexOutOfBounds {
                what: "machine",
                ..
            })
        ));
    }
}

//! Deterministic assembly of the full performance database.

use datatrans_rng::rngs::StdRng;
use datatrans_rng::{Rng, SeedableRng};

use crate::benchmark::spec_cpu2006;
use crate::catalog::build_machines;
use crate::database::PerfDatabase;
use crate::perf_model::spec_ratio;
use crate::{DatasetError, Result};

/// Configuration of the dataset generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DatasetConfig {
    /// Master seed. Everything — machine jitter, measurement noise — is a
    /// pure function of this value.
    pub seed: u64,
    /// Standard deviation of multiplicative lognormal measurement noise on
    /// each score. SPEC run-to-run variation is on the order of 1–2%.
    pub noise_sigma: f64,
}

impl Default for DatasetConfig {
    fn default() -> Self {
        DatasetConfig {
            seed: 0xDA7A_72A5,
            noise_sigma: 0.015,
        }
    }
}

impl DatasetConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::InvalidConfig`] if `noise_sigma` is negative
    /// or not finite.
    pub fn validate(&self) -> Result<()> {
        if !self.noise_sigma.is_finite() || self.noise_sigma < 0.0 || self.noise_sigma > 0.5 {
            return Err(DatasetError::InvalidConfig {
                name: "noise_sigma",
                value: self.noise_sigma.to_string(),
            });
        }
        Ok(())
    }
}

/// Standard normal sample via Box–Muller.
fn gaussian(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Generates the complete 29 × 117 performance database.
///
/// Pipeline: build the Table 1 machine catalog (with per-instance
/// variation), evaluate the CPI-stack model for every (benchmark, machine)
/// pair, then apply multiplicative lognormal measurement noise.
/// Deterministic given `config.seed`.
///
/// # Errors
///
/// Returns [`DatasetError::InvalidConfig`] on invalid configuration.
///
/// # Example
///
/// ```
/// use datatrans_dataset::generator::{generate, DatasetConfig};
///
/// # fn main() -> Result<(), datatrans_dataset::DatasetError> {
/// let db = generate(&DatasetConfig { seed: 7, noise_sigma: 0.01 })?;
/// assert_eq!(db.n_benchmarks() * db.n_machines(), 29 * 117);
/// # Ok(())
/// # }
/// ```
pub fn generate(config: &DatasetConfig) -> Result<PerfDatabase> {
    config.validate()?;
    let benchmarks = spec_cpu2006();
    let machines = build_machines(config.seed);
    let mut rng = StdRng::seed_from_u64(config.seed.wrapping_mul(0xA24B_AED4_963E_E407));

    let mut scores = Vec::with_capacity(benchmarks.len() * machines.len());
    for b in &benchmarks {
        for m in &machines {
            let clean = spec_ratio(&m.micro, &b.characteristics);
            let noisy = clean * (config.noise_sigma * gaussian(&mut rng)).exp();
            scores.push(noisy);
        }
    }
    PerfDatabase::new(benchmarks, machines, scores)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let a = generate(&DatasetConfig::default()).unwrap();
        let b = generate(&DatasetConfig::default()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&DatasetConfig {
            seed: 1,
            noise_sigma: 0.015,
        })
        .unwrap();
        let b = generate(&DatasetConfig {
            seed: 2,
            noise_sigma: 0.015,
        })
        .unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn zero_noise_matches_model_exactly() {
        let db = generate(&DatasetConfig {
            seed: 5,
            noise_sigma: 0.0,
        })
        .unwrap();
        let b = &db.benchmarks()[0];
        let m = &db.machines()[0];
        let expected = spec_ratio(&m.micro, &b.characteristics);
        assert!((db.score(0, 0) - expected).abs() < 1e-12);
    }

    #[test]
    fn noise_is_small_relative_perturbation() {
        let clean = generate(&DatasetConfig {
            seed: 5,
            noise_sigma: 0.0,
        })
        .unwrap();
        let noisy = generate(&DatasetConfig {
            seed: 5,
            noise_sigma: 0.015,
        })
        .unwrap();
        for b in 0..clean.n_benchmarks() {
            for m in 0..clean.n_machines() {
                let rel = (noisy.score(b, m) / clean.score(b, m)).ln().abs();
                assert!(rel < 0.1, "noise too large: {rel}");
            }
        }
    }

    #[test]
    fn validates_config() {
        assert!(generate(&DatasetConfig {
            seed: 1,
            noise_sigma: -0.1
        })
        .is_err());
        assert!(generate(&DatasetConfig {
            seed: 1,
            noise_sigma: 0.9
        })
        .is_err());
        assert!(generate(&DatasetConfig {
            seed: 1,
            noise_sigma: f64::NAN
        })
        .is_err());
    }

    #[test]
    fn scores_positive_and_finite() {
        let db = generate(&DatasetConfig::default()).unwrap();
        for b in 0..db.n_benchmarks() {
            for m in 0..db.n_machines() {
                let s = db.score(b, m);
                assert!(s.is_finite() && s > 0.0);
            }
        }
    }
}

//! The persistent worker pool backing the parallel maps.
//!
//! [`Parallelism::par_map`] used to spawn fresh [`std::thread::scope`]
//! workers on every call — fine at harness granularity (one spawn per
//! table), measurable at GA-generation granularity (one spawn per
//! generation, thousands per experiment). This module keeps a process-wide
//! pool of long-lived workers instead: a call checks out as many idle
//! workers as it needs, spawns the shortfall (so the pool grows to the
//! high-water mark of *concurrent* demand and never blocks a nested call),
//! and checks them back in when the call completes.
//!
//! The execution contract is identical to the scoped implementation it
//! replaces:
//!
//! * every call gets exclusive workers — no work stealing between calls, so
//!   one call's load cannot reorder another's results;
//! * a panic inside a job is caught on the worker, carried back to the
//!   submitting thread, and re-raised there *after* every worker of that
//!   call has finished — the pool itself is never poisoned, and the
//!   surviving workers go back to the free list for the next call;
//! * workers park on a channel between calls and are reclaimed by the OS at
//!   process exit.
//!
//! # Safety
//!
//! This is the one module in the workspace that needs `unsafe`: a worker
//! must run a closure that borrows the submitting caller's stack (the map
//! closure, its input slice, the output slots), but a long-lived thread
//! cannot hold a non-`'static` reference. [`run`] erases the borrow to a
//! raw pointer and re-establishes the invariant by construction: it does
//! not return until every worker has reported completion of this call's
//! job, so the pointee is live for every dereference. This is the same
//! argument scoped threads make, enforced by a completion channel instead
//! of `JoinHandle`s.

use std::panic::AssertUnwindSafe;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Mutex, OnceLock};

/// A type-erased job reference handed to one worker.
///
/// `task` points at a live `F: Fn(usize) + Sync` on the submitting
/// caller's stack and `call` is the monomorphized trampoline that knows how
/// to invoke it. The pair is split this way so the pointer stays *thin* —
/// no fat-pointer lifetime transmutes.
struct JobRef {
    task: *const (),
    call: unsafe fn(*const (), usize),
    /// Which of the call's worker slots this job occupies (0-based).
    slot: usize,
    /// Completion signal: `Ok` or the caught panic payload.
    done: Sender<std::thread::Result<()>>,
}

// SAFETY: `task` is only dereferenced between `run` submitting the job and
// the worker sending on `done`, and `run` keeps the pointee alive (and
// unmoved) for that whole window by blocking on the completion channel.
// The pointee is `Sync`, so a shared borrow from another thread is sound.
unsafe impl Send for JobRef {}

/// Trampoline re-materializing the concrete closure type.
///
/// # Safety
///
/// `task` must point to a live `F` for the duration of the call.
unsafe fn call_erased<F: Fn(usize) + Sync>(task: *const (), slot: usize) {
    unsafe { (*task.cast::<F>())(slot) }
}

/// One parked worker: the sending half of its private job channel.
struct Worker {
    jobs: Sender<JobRef>,
}

/// The process-wide pool: a free list of parked workers.
struct Pool {
    idle: Mutex<Vec<Worker>>,
}

static POOL: OnceLock<Pool> = OnceLock::new();

fn pool() -> &'static Pool {
    POOL.get_or_init(|| Pool {
        idle: Mutex::new(Vec::new()),
    })
}

/// A worker's life: park on the channel, run a job, report, repeat.
/// Panics are caught per job, so one failing call never kills the worker.
fn worker_loop(jobs: Receiver<JobRef>) {
    while let Ok(job) = jobs.recv() {
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            // SAFETY: the submitting `run` call blocks until this job's
            // outcome arrives on `done`, keeping the pointee alive.
            unsafe { (job.call)(job.task, job.slot) }
        }));
        // A send can only fail if the submitting thread is gone, which
        // `run`'s blocking receive rules out; ignore rather than unwrap so
        // a worker never dies on shutdown races in tests.
        let _ = job.done.send(result);
    }
}

fn spawn_worker() -> Worker {
    let (tx, rx) = channel();
    std::thread::Builder::new()
        .name("datatrans-pool-worker".into())
        .spawn(move || worker_loop(rx))
        .expect("spawn pool worker");
    Worker { jobs: tx }
}

/// Runs `task(slot)` for every slot in `0..threads`, one slot per pooled
/// worker, and returns when all have finished.
///
/// If any slot panicked, the first payload (in slot completion order) is
/// re-raised on the calling thread after every worker has stopped — the
/// same observable behaviour as the scoped-spawn implementation. The
/// workers themselves survive and return to the free list either way.
pub(crate) fn run<F>(threads: usize, task: &F)
where
    F: Fn(usize) + Sync,
{
    // Check out idle workers; spawn the shortfall. Spawning instead of
    // waiting keeps nested calls (a pooled job itself calling `run`)
    // deadlock-free, exactly like per-call scoped spawning did.
    let mut workers = {
        let mut idle = pool().idle.lock().expect("pool free list");
        let keep = idle.len() - threads.min(idle.len());
        idle.split_off(keep)
    };
    while workers.len() < threads {
        workers.push(spawn_worker());
    }

    let (done_tx, done_rx) = channel();
    for (slot, worker) in workers.iter().enumerate() {
        let job = JobRef {
            task: (task as *const F).cast::<()>(),
            call: call_erased::<F>,
            slot,
            done: done_tx.clone(),
        };
        worker.jobs.send(job).expect("pool worker alive");
    }
    drop(done_tx);

    let mut panic_payload = None;
    for _ in 0..workers.len() {
        if let Err(payload) = done_rx.recv().expect("every worker reports") {
            panic_payload.get_or_insert(payload);
        }
    }

    // Check the workers back in before unwinding: a panicking call must
    // poison only itself, never the pool.
    pool()
        .idle
        .lock()
        .expect("pool free list")
        .append(&mut workers);
    if let Some(payload) = panic_payload {
        std::panic::resume_unwind(payload);
    }
}

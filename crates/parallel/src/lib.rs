//! Deterministic persistent-worker-pool execution for the `datatrans`
//! workspace.
//!
//! Every hot loop in the reproduction — GA population fitness, MLPᵀ batch
//! prediction, the experiment harnesses' (fold × application) grids,
//! bootstrap resampling — is a *data-parallel map over an index range*
//! whose per-item results depend only on the item index, never on
//! evaluation order. This crate exploits that shape: [`Parallelism::par_map`]
//! and [`Parallelism::par_map_indexed`] fan the range out across a
//! process-wide pool of long-lived worker threads (see [`mod@pool`]) and
//! merge the results back **in input order**, so the output is
//! bitwise-identical to the sequential loop at any thread count. The
//! golden-snapshot and naive-reference equivalence tests therefore hold
//! unchanged with parallelism enabled.
//!
//! Workers self-schedule off a shared atomic cursor (one item at a time),
//! which load-balances heterogeneous items — e.g. processor-family folds of
//! very different sizes — without any effect on the merged result.
//!
//! # Per-worker scratch
//!
//! [`Parallelism::par_map_with`] and
//! [`Parallelism::par_map_indexed_with`] additionally hand every item a
//! `&mut S` scratch value created **once per worker per call** by an
//! `init` closure. This is the `Sync` scratch-buffer story for hot loops
//! whose per-item work wants preallocated buffers (GA-kNN distance
//! buffers, MLP forward-pass scratch) or per-worker read handles (the
//! sharded database's shard-cursor readers: each evaluation-harness worker
//! gets its own handle caching the shard serving its last lookup, so
//! workers never contend on a shared cursor): the
//! map closure itself stays `Fn + Sync`, while each worker mutates only
//! its private scratch. Because the scratch must never influence the
//! *value* computed for an item (only where intermediates are stored, or
//! how fast a lookup resolves), results remain bitwise-identical at any
//! thread count; the sequential fallback reuses a single scratch for the
//! whole loop.
//!
//! # Choosing a thread count
//!
//! [`Parallelism`] is a small config value carried by the structs that own
//! hot loops ([`GaConfig`], the experiment harness configs):
//!
//! * [`Parallelism::Sequential`] — run inline on the caller, spawn nothing;
//! * [`Parallelism::Threads`]`(n)` — exactly `n` workers;
//! * [`Parallelism::Auto`] (the default) — the `DATATRANS_THREADS`
//!   environment variable if set, otherwise
//!   [`std::thread::available_parallelism`].
//!
//! Below a per-call work threshold (`min_work`) every variant falls back to
//! the inline sequential loop, so tiny inputs never pay dispatch latency.
//!
//! # Pool lifecycle
//!
//! Worker threads are spawned lazily on first use and parked between calls;
//! a call checks out exactly the workers it needs and returns them when it
//! completes, so steady-state parallel maps pay two channel messages per
//! worker instead of a thread spawn + join. The pool grows to the
//! high-water mark of concurrent demand (nested calls spawn rather than
//! wait, so they can never deadlock) and lives until process exit. A panic
//! inside a map poisons only that call: the payload is re-raised on the
//! caller after all of the call's workers finish, and the workers return to
//! the free list.
//!
//! [`GaConfig`]: https://docs.rs/datatrans-ml
//!
//! # Example
//!
//! ```
//! use datatrans_parallel::Parallelism;
//!
//! let squares = Parallelism::Threads(4).par_map_indexed(1, 100, |i| i * i);
//! assert_eq!(squares, (0..100).map(|i| i * i).collect::<Vec<_>>());
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

// The pool is the one place the workspace needs `unsafe`: long-lived
// workers borrowing a caller's stack closure. The module documents the
// invariant that makes it sound.
#[allow(unsafe_code)]
mod pool;

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Environment variable overriding the [`Parallelism::Auto`] thread count.
pub const THREADS_ENV: &str = "DATATRANS_THREADS";

/// How many worker threads a parallel map may use.
///
/// `Parallelism` is `Copy` and cheap to embed in config structs; the
/// environment lookup for [`Parallelism::Auto`] happens per call, not at
/// construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Parallelism {
    /// Run inline on the calling thread; never spawn workers.
    Sequential,
    /// Use exactly this many worker threads (`0` is treated as `1`).
    Threads(usize),
    /// `DATATRANS_THREADS` if set to a positive integer, otherwise
    /// [`std::thread::available_parallelism`].
    #[default]
    Auto,
}

impl Parallelism {
    /// The number of worker threads this configuration resolves to.
    ///
    /// Always at least 1. A result of 1 means the parallel maps run inline
    /// without spawning.
    pub fn thread_count(&self) -> usize {
        match self {
            Parallelism::Sequential => 1,
            Parallelism::Threads(n) => (*n).max(1),
            Parallelism::Auto => env_thread_count().unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(NonZeroUsize::get)
                    .unwrap_or(1)
            }),
        }
    }

    /// Maps `f` over `0..n`, returning results in index order.
    ///
    /// The output is bitwise-identical to
    /// `(0..n).map(f).collect::<Vec<_>>()` at any thread count: workers
    /// self-schedule individual indices and the merged results are sorted
    /// back into input order. Falls back to the inline sequential loop when
    /// `n < min_work` or the resolved thread count is 1.
    ///
    /// # Panics
    ///
    /// If `f` panics on a worker thread, the panic payload is re-raised on
    /// the calling thread after all workers have stopped.
    pub fn par_map_indexed<U, F>(&self, min_work: usize, n: usize, f: F) -> Vec<U>
    where
        U: Send,
        F: Fn(usize) -> U + Sync,
    {
        let threads = self.thread_count().min(n);
        if threads <= 1 || n < min_work {
            return (0..n).map(f).collect();
        }
        run_workers(threads, n, &|| (), &|_scratch: &mut (), i| f(i))
    }

    /// Maps `f` over a slice, returning results in input order.
    ///
    /// Same ordering and fallback guarantees as
    /// [`Parallelism::par_map_indexed`].
    ///
    /// # Panics
    ///
    /// If `f` panics on a worker thread, the panic payload is re-raised on
    /// the calling thread after all workers have stopped.
    pub fn par_map<T, U, F>(&self, min_work: usize, items: &[T], f: F) -> Vec<U>
    where
        T: Sync,
        U: Send,
        F: Fn(&T) -> U + Sync,
    {
        self.par_map_indexed(min_work, items.len(), |i| f(&items[i]))
    }

    /// Maps `f` over `0..n` with a per-worker scratch value, returning
    /// results in index order.
    ///
    /// `init` runs once per worker per call (once total on the sequential
    /// fallback) and the resulting scratch is passed mutably to every item
    /// that worker processes — the reuse story for preallocated buffers on
    /// hot paths. The scratch must not influence computed values, only hold
    /// intermediates; under that contract the output is bitwise-identical
    /// to the sequential loop at any thread count, exactly like
    /// [`Parallelism::par_map_indexed`].
    ///
    /// # Panics
    ///
    /// If `init` or `f` panics on a worker thread, the panic payload is
    /// re-raised on the calling thread after all workers have stopped.
    pub fn par_map_indexed_with<S, U, I, F>(
        &self,
        min_work: usize,
        n: usize,
        init: I,
        f: F,
    ) -> Vec<U>
    where
        U: Send,
        I: Fn() -> S + Sync,
        F: Fn(&mut S, usize) -> U + Sync,
    {
        let threads = self.thread_count().min(n);
        if threads <= 1 || n < min_work {
            let mut scratch = init();
            return (0..n).map(|i| f(&mut scratch, i)).collect();
        }
        run_workers(threads, n, &init, &f)
    }

    /// Maps `f` over a slice with a per-worker scratch value, returning
    /// results in input order.
    ///
    /// Same scratch, ordering, and fallback guarantees as
    /// [`Parallelism::par_map_indexed_with`].
    ///
    /// # Panics
    ///
    /// If `init` or `f` panics on a worker thread, the panic payload is
    /// re-raised on the calling thread after all workers have stopped.
    pub fn par_map_with<T, S, U, I, F>(&self, min_work: usize, items: &[T], init: I, f: F) -> Vec<U>
    where
        T: Sync,
        U: Send,
        I: Fn() -> S + Sync,
        F: Fn(&mut S, &T) -> U + Sync,
    {
        self.par_map_indexed_with(min_work, items.len(), init, |scratch, i| {
            f(scratch, &items[i])
        })
    }
}

/// Parses a `DATATRANS_THREADS`-style value: a positive integer, with
/// surrounding whitespace tolerated. Anything else is ignored.
fn parse_thread_count(value: &str) -> Option<usize> {
    value.trim().parse::<usize>().ok().filter(|&n| n >= 1)
}

fn env_thread_count() -> Option<usize> {
    std::env::var(THREADS_ENV)
        .ok()
        .and_then(|v| parse_thread_count(&v))
}

/// The parallel path: `threads` pooled workers pull indices off a shared
/// cursor, collect `(index, value)` pairs locally (each reusing one
/// per-worker scratch from `init`), and the caller merges them back into
/// index order.
fn run_workers<S, U, I, F>(threads: usize, n: usize, init: &I, f: &F) -> Vec<U>
where
    U: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> U + Sync,
{
    let cursor = AtomicUsize::new(0);
    // One output slot per worker; each worker writes only its own, so the
    // mutexes are uncontended and exist to satisfy the shared-borrow rules.
    let slots: Vec<Mutex<Vec<(usize, U)>>> = (0..threads).map(|_| Mutex::new(Vec::new())).collect();
    pool::run(threads, &|slot: usize| {
        let mut scratch = init();
        let mut local = Vec::new();
        loop {
            let i = cursor.fetch_add(1, Ordering::Relaxed);
            if i >= n {
                break;
            }
            local.push((i, f(&mut scratch, i)));
        }
        *slots[slot].lock().expect("private output slot") = local;
    });
    let mut indexed = Vec::with_capacity(n);
    for slot in slots {
        indexed.extend(slot.into_inner().expect("private output slot"));
    }
    indexed.sort_unstable_by_key(|(i, _)| *i);
    indexed.into_iter().map(|(_, u)| u).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::AssertUnwindSafe;
    use std::sync::Mutex;
    use std::thread::ThreadId;

    #[test]
    fn indexed_results_are_in_input_order() {
        for p in [
            Parallelism::Sequential,
            Parallelism::Threads(2),
            Parallelism::Threads(4),
            Parallelism::Threads(7),
        ] {
            let got = p.par_map_indexed(1, 100, |i| i * 3 + 1);
            let want: Vec<usize> = (0..100).map(|i| i * 3 + 1).collect();
            assert_eq!(got, want, "{p:?}");
        }
    }

    #[test]
    fn slice_map_matches_sequential_bitwise() {
        let items: Vec<f64> = (0..257).map(|i| (i as f64 * 0.37).sin()).collect();
        let f = |x: &f64| (x * 1.7).exp().sqrt() + x;
        let seq: Vec<f64> = items.iter().map(f).collect();
        for threads in [2, 3, 4, 8] {
            let par = Parallelism::Threads(threads).par_map(1, &items, f);
            assert_eq!(par.len(), seq.len());
            for (a, b) in par.iter().zip(&seq) {
                assert_eq!(a.to_bits(), b.to_bits(), "{threads} threads");
            }
        }
    }

    #[test]
    fn empty_and_single_inputs() {
        let empty: Vec<usize> = Parallelism::Threads(4).par_map_indexed(0, 0, |i| i);
        assert!(empty.is_empty());
        let one = Parallelism::Threads(4).par_map_indexed(0, 1, |i| i + 9);
        assert_eq!(one, vec![9]);
    }

    #[test]
    fn below_min_work_runs_inline() {
        let main_id = std::thread::current().id();
        let ids = Parallelism::Threads(4).par_map_indexed(100, 8, |_| std::thread::current().id());
        assert!(
            ids.iter().all(|&id| id == main_id),
            "below-threshold work must stay on the caller"
        );
    }

    #[test]
    fn at_or_above_min_work_uses_workers() {
        let main_id = std::thread::current().id();
        let ids: Vec<ThreadId> =
            Parallelism::Threads(2).par_map_indexed(1, 16, |_| std::thread::current().id());
        assert!(
            ids.iter().all(|&id| id != main_id),
            "above-threshold work must run on spawned workers"
        );
    }

    #[test]
    fn sequential_never_spawns() {
        let main_id = std::thread::current().id();
        let ids = Parallelism::Sequential.par_map_indexed(0, 32, |_| std::thread::current().id());
        assert!(ids.iter().all(|&id| id == main_id));
    }

    #[test]
    fn worker_panic_propagates_to_caller() {
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            Parallelism::Threads(2).par_map_indexed(1, 16, |i| {
                if i == 5 {
                    panic!("boom at {i}");
                }
                i
            })
        }));
        let payload = result.expect_err("panic must propagate");
        let message = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(message.contains("boom at 5"), "payload: {message}");
    }

    #[test]
    fn thread_count_resolution() {
        assert_eq!(Parallelism::Sequential.thread_count(), 1);
        assert_eq!(Parallelism::Threads(0).thread_count(), 1);
        assert_eq!(Parallelism::Threads(6).thread_count(), 6);
        assert!(Parallelism::Auto.thread_count() >= 1);
        assert_eq!(Parallelism::default(), Parallelism::Auto);
    }

    #[test]
    fn env_value_parsing() {
        assert_eq!(parse_thread_count("4"), Some(4));
        assert_eq!(parse_thread_count(" 2 "), Some(2));
        assert_eq!(parse_thread_count("1"), Some(1));
        assert_eq!(parse_thread_count("0"), None);
        assert_eq!(parse_thread_count(""), None);
        assert_eq!(parse_thread_count("lots"), None);
        assert_eq!(parse_thread_count("-3"), None);
    }

    #[test]
    fn pool_workers_survive_across_calls() {
        // Every call checks workers out of the shared free list and back
        // in, so consecutive calls reuse threads instead of spawning. Other
        // tests run concurrently against the same global pool, so assert
        // substantial reuse rather than exact identity: 20 two-worker calls
        // must not see anywhere near 40 distinct worker threads.
        let mut seen = std::collections::HashSet::new();
        for _ in 0..20 {
            let ids =
                Parallelism::Threads(2).par_map_indexed(1, 8, |_| std::thread::current().id());
            seen.extend(ids);
        }
        assert!(
            seen.len() < 20,
            "expected worker reuse across calls, saw {} distinct threads",
            seen.len()
        );
    }

    #[test]
    fn panic_poisons_only_the_failing_call() {
        let p = Parallelism::Threads(2);
        let boom = std::panic::catch_unwind(AssertUnwindSafe(|| {
            p.par_map_indexed(1, 16, |i| {
                if i == 3 {
                    panic!("poisoned call");
                }
                i
            })
        }));
        assert!(boom.is_err());
        // The pool must keep serving: same workers, fresh call, correct
        // in-order results.
        let got = p.par_map_indexed(1, 16, |i| i * 2);
        assert_eq!(got, (0..16).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn scratch_is_worker_local_and_reused() {
        // Each worker gets exactly one scratch per call; items record which
        // scratch instance served them and how many items it had seen.
        let next_scratch_id = AtomicUsize::new(0);
        let results = Parallelism::Threads(3).par_map_indexed_with(
            1,
            64,
            || (next_scratch_id.fetch_add(1, Ordering::Relaxed), 0usize),
            |scratch, _i| {
                scratch.1 += 1;
                (std::thread::current().id(), scratch.0, scratch.1)
            },
        );
        let inits = next_scratch_id.load(Ordering::Relaxed);
        assert!(
            (1..=3).contains(&inits),
            "one scratch per worker, got {inits}"
        );
        // A scratch never crosses threads, and vice versa.
        let mut scratch_of_thread = std::collections::HashMap::new();
        let mut thread_of_scratch = std::collections::HashMap::new();
        let mut per_scratch_count = std::collections::HashMap::new();
        for (thread, scratch, count) in results {
            assert_eq!(*scratch_of_thread.entry(thread).or_insert(scratch), scratch);
            assert_eq!(*thread_of_scratch.entry(scratch).or_insert(thread), thread);
            // Counts grow monotonically per scratch: the same instance is
            // mutated across that worker's items, not recreated.
            let seen = per_scratch_count.entry(scratch).or_insert(0usize);
            assert_eq!(count, *seen + 1);
            *seen = count;
        }
    }

    #[test]
    fn scratch_sequential_fallback_reuses_one_scratch() {
        let inits = AtomicUsize::new(0);
        let got = Parallelism::Sequential.par_map_indexed_with(
            1,
            32,
            || {
                inits.fetch_add(1, Ordering::Relaxed);
                0usize
            },
            |scratch, i| {
                *scratch += 1;
                (i, *scratch)
            },
        );
        assert_eq!(inits.load(Ordering::Relaxed), 1);
        // One scratch across all items: the running count matches the index.
        for (i, count) in got {
            assert_eq!(count, i + 1);
        }
    }

    #[test]
    fn cursor_style_scratch_accelerates_without_changing_values() {
        // The sharded database's reader-handle pattern: scratch is a
        // cursor caching the "segment" that served the last lookup. The
        // cursor changes how a value is *found* (cache hit vs recomputed
        // segment search), never the value itself — so every thread count
        // must return identical results even though workers' cursors see
        // different access sequences.
        let boundaries: Vec<usize> = vec![0, 20, 45, 80, 100];
        let data: Vec<f64> = (0..100).map(|i| (i as f64 * 0.13).sin()).collect();
        let lookup = |cursor: &mut usize, i: usize| -> f64 {
            let seg = *cursor;
            let in_cached = i >= boundaries[seg] && i < boundaries[seg + 1];
            if !in_cached {
                *cursor = boundaries.partition_point(|&b| b <= i) - 1;
            }
            data[i]
        };
        let seq = Parallelism::Sequential.par_map_indexed_with(1, 100, || 0usize, lookup);
        for threads in [2, 3, 4] {
            let par = Parallelism::Threads(threads).par_map_indexed_with(1, 100, || 0usize, lookup);
            for (a, b) in par.iter().zip(&seq) {
                assert_eq!(a.to_bits(), b.to_bits(), "{threads} threads");
            }
        }
    }

    #[test]
    fn par_map_with_matches_sequential_bitwise() {
        let items: Vec<f64> = (0..193).map(|i| (i as f64 * 0.61).cos()).collect();
        let f = |buf: &mut Vec<f64>, x: &f64| {
            buf.clear();
            buf.extend((0..8).map(|k| x * (k as f64 + 1.0)));
            buf.iter().map(|v| v.sin()).sum::<f64>()
        };
        let seq = Parallelism::Sequential.par_map_with(1, &items, Vec::new, f);
        for threads in [2, 3, 5] {
            let par = Parallelism::Threads(threads).par_map_with(1, &items, Vec::new, f);
            assert_eq!(par.len(), seq.len());
            for (a, b) in par.iter().zip(&seq) {
                assert_eq!(a.to_bits(), b.to_bits(), "{threads} threads");
            }
        }
    }

    #[test]
    fn load_imbalance_keeps_order() {
        // Items near the front are much slower; self-scheduling lets later
        // items overtake them in time, but never in the output.
        let slow = Mutex::new(());
        let got = Parallelism::Threads(4).par_map_indexed(1, 24, |i| {
            if i < 4 {
                let _guard = slow.lock().unwrap();
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            i * 10
        });
        let want: Vec<usize> = (0..24).map(|i| i * 10).collect();
        assert_eq!(got, want);
    }
}

//! # datatrans — Ranking Commercial Machines through Data Transposition
//!
//! A production-quality Rust reproduction of Piccart, Georges, Blockeel and
//! Eeckhout, *Ranking Commercial Machines through Data Transposition*
//! (IISWC 2011).
//!
//! Given published benchmark results (a SPEC-like database of benchmarks ×
//! machines) and a handful of *predictive machines* you can actually run
//! code on, data transposition predicts how **your** application would
//! perform on every machine in the database — and therefore which machine
//! to buy, schedule on, or build next.
//!
//! This facade crate re-exports the workspace layers:
//!
//! * [`linalg`] — dense matrices, QR/Cholesky/LU/eigen decompositions.
//! * [`parallel`] — the deterministic scoped worker-pool executor
//!   (`Parallelism`, `par_map`) behind every fan-out; results are
//!   bitwise-identical at any thread count.
//! * [`stats`] — ranks, Spearman/Pearson/Kendall, error metrics, bootstrap.
//! * [`ml`] — linear regression, MLP, kNN, GA, k-medoids, PCA.
//! * [`dataset`] — the synthetic SPEC CPU2006 substrate: the 117-machine
//!   Table 1 catalog, 29 benchmark profiles, and the CPI-stack performance
//!   model.
//! * [`core`] — the paper's contribution: NNᵀ and MLPᵀ transposition
//!   models, the GA-kNN baseline, evaluation harnesses, and application
//!   layers (purchasing advisor, heterogeneous scheduler, design-space
//!   exploration).
//! * [`serve_net`] — the std-only TCP serving front end: line-oriented
//!   wire protocol, batching window, per-connection backpressure, and
//!   graceful drain around the cached serving engine.
//! * [`experiments`] — drivers regenerating every table and figure.
//!
//! # Quickstart
//!
//! ```
//! use datatrans::core::model::{MlpT, Predictor};
//! use datatrans::core::ranking::Ranking;
//! use datatrans::core::task::PredictionTask;
//! use datatrans::dataset::generator::{generate, DatasetConfig};
//! use datatrans::dataset::workload_synth::{synthesize, WorkloadProfile};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // The published database: 29 benchmarks × 117 machines.
//! let db = generate(&DatasetConfig::default())?;
//!
//! // Your application, and the three machines you own.
//! let app = synthesize(WorkloadProfile::ServerInteger, 42);
//! let predictive = vec![3, 57, 81];
//! let targets: Vec<usize> =
//!     (0..db.n_machines()).filter(|m| !predictive.contains(m)).collect();
//!
//! // Predict its score on all 114 machines you cannot access.
//! let task = PredictionTask::external_app(&db, &app, &predictive, &targets, 7)?;
//! let predicted = MlpT::default().predict(&task)?;
//! let ranking = Ranking::from_scores(&predicted)?;
//! let best = &db.machines()[targets[ranking.top1()]];
//! println!("buy: {} {} ({})", best.family, best.name, best.year);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]

pub use datatrans_core as core;
pub use datatrans_dataset as dataset;
pub use datatrans_experiments as experiments;
pub use datatrans_linalg as linalg;
pub use datatrans_ml as ml;
pub use datatrans_parallel as parallel;
pub use datatrans_serve_net as serve_net;
pub use datatrans_stats as stats;
